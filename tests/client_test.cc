// Client library tests: reliable channel algebra and the client state
// machine's fixed traffic footprint.

#include <gtest/gtest.h>

#include "src/client/client.h"
#include "src/client/reliable.h"
#include "src/util/random.h"

namespace vuvuzela::client {
namespace {

util::Bytes Msg(const char* s) {
  return util::Bytes(reinterpret_cast<const uint8_t*>(s),
                     reinterpret_cast<const uint8_t*>(s) + strlen(s));
}

TEST(ReliableChannel, DeliversInOrder) {
  ReliableChannel a, b;
  a.QueueMessage(Msg("one"));

  util::Bytes frame = a.NextFrame();
  auto delivered = b.HandleFrame(frame);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(*delivered, Msg("one"));

  // b's next frame acks; a drops the message from its outbox.
  EXPECT_EQ(a.unacked_count(), 1u);
  a.HandleFrame(b.NextFrame());
  EXPECT_EQ(a.unacked_count(), 0u);
}

TEST(ReliableChannel, EmptyFramesCarryAcksOnly) {
  ReliableChannel a, b;
  util::Bytes frame = a.NextFrame();
  EXPECT_EQ(frame.size(), kFrameHeaderSize);
  EXPECT_FALSE(b.HandleFrame(frame).has_value());
}

TEST(ReliableChannel, RetransmitsUntilAcked) {
  ReliableChannel a, b;
  a.QueueMessage(Msg("hello"));

  // Round 1: frame lost (never delivered to b).
  a.NextFrame();
  EXPECT_EQ(a.unacked_count(), 1u);

  // Round 2: retransmission delivered.
  util::Bytes retry = a.NextFrame();
  EXPECT_GE(a.retransmissions(), 1u);
  auto delivered = b.HandleFrame(retry);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(*delivered, Msg("hello"));

  // Duplicate delivery of the same frame is suppressed.
  EXPECT_FALSE(b.HandleFrame(retry).has_value());
}

TEST(ReliableChannel, PipelinedConversation) {
  ReliableChannel a, b;
  std::vector<util::Bytes> a_gets, b_gets;
  a.QueueMessage(Msg("a1"));
  a.QueueMessage(Msg("a2"));
  a.QueueMessage(Msg("a3"));
  b.QueueMessage(Msg("b1"));

  for (int round = 0; round < 8; ++round) {
    util::Bytes fa = a.NextFrame();
    util::Bytes fb = b.NextFrame();
    if (auto d = b.HandleFrame(fa)) {
      b_gets.push_back(*d);
    }
    if (auto d = a.HandleFrame(fb)) {
      a_gets.push_back(*d);
    }
  }
  ASSERT_EQ(b_gets.size(), 3u);
  EXPECT_EQ(b_gets[0], Msg("a1"));
  EXPECT_EQ(b_gets[1], Msg("a2"));
  EXPECT_EQ(b_gets[2], Msg("a3"));
  ASSERT_EQ(a_gets.size(), 1u);
  EXPECT_EQ(a_gets[0], Msg("b1"));
}

TEST(ReliableChannel, SurvivesLossyRounds) {
  ReliableChannel a, b;
  util::Xoshiro256Rng rng(123);
  constexpr int kMessages = 20;
  for (int i = 0; i < kMessages; ++i) {
    a.QueueMessage(Msg(("msg" + std::to_string(i)).c_str()));
  }
  std::vector<util::Bytes> delivered;
  // 40% frame loss in both directions.
  for (int round = 0; round < 200 && delivered.size() < kMessages; ++round) {
    util::Bytes fa = a.NextFrame();
    util::Bytes fb = b.NextFrame();
    if (rng.UniformDouble() > 0.4) {
      if (auto d = b.HandleFrame(fa)) {
        delivered.push_back(*d);
      }
    }
    if (rng.UniformDouble() > 0.4) {
      a.HandleFrame(fb);
    }
  }
  ASSERT_EQ(delivered.size(), kMessages);
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(delivered[i], Msg(("msg" + std::to_string(i)).c_str()));
  }
}

TEST(ReliableChannel, WindowPipelinesOneMessagePerRound) {
  // With W ≥ 2 and a loss-free channel, a busy sender delivers one message
  // per round (§8.3's "new message every round").
  ReliableChannel a(/*window=*/4), b(/*window=*/4);
  constexpr int kMessages = 6;
  for (int i = 0; i < kMessages; ++i) {
    a.QueueMessage(Msg(("p" + std::to_string(i)).c_str()));
  }
  int delivered = 0;
  for (int round = 0; round < kMessages; ++round) {
    util::Bytes fa = a.NextFrame();
    util::Bytes fb = b.NextFrame();
    if (b.HandleFrame(fa)) {
      ++delivered;
    }
    a.HandleFrame(fb);
  }
  EXPECT_EQ(delivered, kMessages);  // one per round, no idle rounds
}

TEST(ReliableChannel, WindowOneIsStopAndWait) {
  ReliableChannel a(/*window=*/1), b(/*window=*/1);
  a.QueueMessage(Msg("first"));
  a.QueueMessage(Msg("second"));

  // Round 1: "first" delivered.
  auto d1 = b.HandleFrame(a.NextFrame());
  ASSERT_TRUE(d1.has_value());
  // Round 2: without an ack processed yet, the sender repeats "first".
  auto d2 = b.HandleFrame(a.NextFrame());
  EXPECT_FALSE(d2.has_value());  // duplicate suppressed
  // Ack flows back; only then does "second" go out.
  a.HandleFrame(b.NextFrame());
  auto d3 = b.HandleFrame(a.NextFrame());
  ASSERT_TRUE(d3.has_value());
  EXPECT_EQ(*d3, Msg("second"));
}

TEST(ReliableChannel, GapDiscardsUntilRetransmission) {
  // Go-Back-N: if frame seq=1 is lost, seq=2..W arriving first are ignored,
  // then the cycle retransmits 1 and delivery resumes in order.
  ReliableChannel a(/*window=*/3), b(/*window=*/3);
  a.QueueMessage(Msg("m1"));
  a.QueueMessage(Msg("m2"));
  a.QueueMessage(Msg("m3"));

  a.NextFrame();                                  // m1: lost
  EXPECT_FALSE(b.HandleFrame(a.NextFrame()).has_value());  // m2: gap, dropped
  EXPECT_FALSE(b.HandleFrame(a.NextFrame()).has_value());  // m3: gap, dropped
  // Cycle wraps: m1 retransmitted, then m2, m3.
  std::vector<util::Bytes> got;
  for (int i = 0; i < 3; ++i) {
    if (auto d = b.HandleFrame(a.NextFrame())) {
      got.push_back(*d);
    }
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], Msg("m1"));
  EXPECT_EQ(got[1], Msg("m2"));
  EXPECT_EQ(got[2], Msg("m3"));
  EXPECT_GE(a.retransmissions(), 1u);
}

TEST(ReliableChannel, RejectsOversizedMessage) {
  ReliableChannel a;
  EXPECT_THROW(a.QueueMessage(util::Bytes(kMaxChatPayload + 1)), std::invalid_argument);
}

TEST(ReliableChannel, MalformedFrameIgnored) {
  ReliableChannel a;
  EXPECT_FALSE(a.HandleFrame(util::Bytes{1, 2, 3}).has_value());
  EXPECT_FALSE(a.HandleFrame({}).has_value());
}

// --- VuvuzelaClient -------------------------------------------------------

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() {
    util::Xoshiro256Rng rng(55);
    for (int i = 0; i < 3; ++i) {
      chain_.push_back(crypto::X25519KeyPair::Generate(rng).public_key);
    }
    alice_keys_ = crypto::X25519KeyPair::Generate(rng);
    bob_keys_ = crypto::X25519KeyPair::Generate(rng);
  }

  VuvuzelaClient MakeClient(const crypto::X25519KeyPair& keys, size_t max_conversations = 1) {
    ClientConfig config;
    config.keys = keys;
    config.chain = chain_;
    config.max_conversations = max_conversations;
    crypto::ChaCha20Key seed{};
    seed[0] = static_cast<uint8_t>(++seed_counter_);
    return VuvuzelaClient(config, seed);
  }

  std::vector<crypto::X25519PublicKey> chain_;
  crypto::X25519KeyPair alice_keys_, bob_keys_;
  int seed_counter_ = 0;
};

TEST_F(ClientTest, AlwaysEmitsFixedOnionCount) {
  VuvuzelaClient idle = MakeClient(alice_keys_, 2);
  VuvuzelaClient busy = MakeClient(bob_keys_, 2);
  busy.AcceptCall(alice_keys_.public_key);

  auto idle_onions = idle.PrepareConversationOnions(1);
  auto busy_onions = busy.PrepareConversationOnions(1);
  ASSERT_EQ(idle_onions.size(), 2u);
  ASSERT_EQ(busy_onions.size(), 2u);
  // Identical sizes: an observer cannot tell idle from busy.
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(idle_onions[i].size(), busy_onions[i].size());
  }
}

TEST_F(ClientTest, SendRequiresConversation) {
  VuvuzelaClient alice = MakeClient(alice_keys_);
  EXPECT_THROW(alice.SendMessage(bob_keys_.public_key, Msg("hi")), std::logic_error);
  alice.AcceptCall(bob_keys_.public_key);
  EXPECT_NO_THROW(alice.SendMessage(bob_keys_.public_key, Msg("hi")));
}

TEST_F(ClientTest, LongMessagesSplitAcrossRounds) {
  VuvuzelaClient alice = MakeClient(alice_keys_);
  alice.AcceptCall(bob_keys_.public_key);
  util::Bytes big(kMaxChatPayload * 2 + 10, 0x42);
  alice.SendMessage(bob_keys_.public_key, big);  // queues 3 chunks, no throw
}

TEST_F(ClientTest, DialOpensConversationPreemptively) {
  VuvuzelaClient alice = MakeClient(alice_keys_);
  EXPECT_FALSE(alice.InConversationWith(bob_keys_.public_key));
  alice.Dial(bob_keys_.public_key);
  EXPECT_TRUE(alice.InConversationWith(bob_keys_.public_key));
}

TEST_F(ClientTest, ConversationSlotEviction) {
  util::Xoshiro256Rng rng(77);
  VuvuzelaClient alice = MakeClient(alice_keys_, 1);
  auto first = crypto::X25519KeyPair::Generate(rng).public_key;
  auto second = crypto::X25519KeyPair::Generate(rng).public_key;
  alice.AcceptCall(first);
  alice.AcceptCall(second);
  EXPECT_EQ(alice.active_conversations(), 1u);
  EXPECT_FALSE(alice.InConversationWith(first));  // oldest evicted
  EXPECT_TRUE(alice.InConversationWith(second));
}

TEST_F(ClientTest, DialOnionSameSizeRealOrIdle) {
  VuvuzelaClient alice = MakeClient(alice_keys_);
  dialing::RoundConfig dial_config{.num_real_drops = 3};
  util::Bytes idle = alice.PrepareDialOnion(1, dial_config);
  alice.Dial(bob_keys_.public_key);
  util::Bytes real = alice.PrepareDialOnion(2, dial_config);
  EXPECT_EQ(idle.size(), real.size());
}

TEST_F(ClientTest, UnknownRoundResponsesIgnored) {
  VuvuzelaClient alice = MakeClient(alice_keys_);
  std::vector<util::Bytes> garbage = {util::Bytes(300)};
  alice.HandleConversationResponses(999, garbage);  // no crash, no effect
  EXPECT_TRUE(alice.TakeReceivedMessages().empty());
}

TEST_F(ClientTest, RejectsBadConfig) {
  ClientConfig config;
  config.keys = alice_keys_;
  crypto::ChaCha20Key seed{};
  EXPECT_THROW(VuvuzelaClient(config, seed), std::invalid_argument);  // empty chain
  config.chain = chain_;
  config.max_conversations = 0;
  EXPECT_THROW(VuvuzelaClient(config, seed), std::invalid_argument);
}

}  // namespace
}  // namespace vuvuzela::client
