// Conversation protocol unit tests (Algorithm 1 client logic).

#include <gtest/gtest.h>

#include <string>

#include "src/conversation/protocol.h"
#include "src/util/random.h"

namespace vuvuzela::conversation {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  util::Xoshiro256Rng rng_{77};
  crypto::X25519KeyPair alice_ = crypto::X25519KeyPair::Generate(rng_);
  crypto::X25519KeyPair bob_ = crypto::X25519KeyPair::Generate(rng_);
  Session alice_session_ = Session::Derive(alice_, bob_.public_key);
  Session bob_session_ = Session::Derive(bob_, alice_.public_key);
};

TEST_F(SessionTest, SharedSecretsAgree) {
  EXPECT_EQ(alice_session_.shared, bob_session_.shared);
}

TEST_F(SessionTest, DirectionalKeysCross) {
  // Alice's send key is Bob's receive key and vice versa; the two directions
  // differ (no key/nonce reuse between the two envelopes of a round).
  EXPECT_EQ(alice_session_.send_key, bob_session_.recv_key);
  EXPECT_EQ(alice_session_.recv_key, bob_session_.send_key);
  EXPECT_NE(alice_session_.send_key, alice_session_.recv_key);
}

TEST_F(SessionTest, DeadDropsAgreeAndVaryPerRound) {
  auto a1 = DeadDropForRound(alice_session_.shared, 1);
  auto b1 = DeadDropForRound(bob_session_.shared, 1);
  EXPECT_EQ(a1, b1);
  auto a2 = DeadDropForRound(alice_session_.shared, 2);
  EXPECT_NE(a1, a2);  // pseudorandom per round (§4.1)
}

TEST_F(SessionTest, DeadDropsDifferAcrossPairs) {
  auto charlie = crypto::X25519KeyPair::Generate(rng_);
  Session other = Session::Derive(alice_, charlie.public_key);
  EXPECT_NE(DeadDropForRound(alice_session_.shared, 5), DeadDropForRound(other.shared, 5));
}

TEST_F(SessionTest, MessageRoundTrip) {
  std::string text = "the crow flies at midnight";
  auto req = BuildExchangeRequest(
      alice_session_, 3, util::ByteSpan(reinterpret_cast<const uint8_t*>(text.data()), text.size()));
  auto opened = OpenExchangeResponse(bob_session_, 3, req.envelope);
  EXPECT_EQ(opened.kind, ResponseKind::kPartnerMessage);
  EXPECT_EQ(std::string(opened.text.begin(), opened.text.end()), text);
}

TEST_F(SessionTest, EmptyMessageRoundTrip) {
  auto req = BuildExchangeRequest(alice_session_, 4, {});
  auto opened = OpenExchangeResponse(bob_session_, 4, req.envelope);
  EXPECT_EQ(opened.kind, ResponseKind::kPartnerMessage);
  EXPECT_TRUE(opened.text.empty());
}

TEST_F(SessionTest, EchoDetected) {
  auto req = BuildExchangeRequest(alice_session_, 5, {});
  // Alice receives her own envelope back (partner absent).
  auto opened = OpenExchangeResponse(alice_session_, 5, req.envelope);
  EXPECT_EQ(opened.kind, ResponseKind::kEcho);
}

TEST_F(SessionTest, WrongRoundUndecryptable) {
  auto req = BuildExchangeRequest(alice_session_, 6, {});
  auto opened = OpenExchangeResponse(bob_session_, 7, req.envelope);
  EXPECT_EQ(opened.kind, ResponseKind::kUndecryptable);
}

TEST_F(SessionTest, ThirdPartyCannotRead) {
  auto charlie = crypto::X25519KeyPair::Generate(rng_);
  Session eavesdropper = Session::Derive(charlie, alice_.public_key);
  auto req = BuildExchangeRequest(alice_session_, 8, {});
  EXPECT_EQ(OpenExchangeResponse(eavesdropper, 8, req.envelope).kind,
            ResponseKind::kUndecryptable);
}

TEST_F(SessionTest, FakeRequestLooksStructurallyIdentical) {
  auto fake = BuildFakeExchangeRequest(alice_, 9, rng_);
  auto real = BuildExchangeRequest(alice_session_, 9, {});
  // Same sizes; the fake request's drop is pseudorandom and its envelope
  // undecryptable by anyone.
  EXPECT_EQ(fake.Serialize().size(), real.Serialize().size());
  EXPECT_NE(fake.dead_drop, real.dead_drop);
  EXPECT_EQ(OpenExchangeResponse(alice_session_, 9, fake.envelope).kind,
            ResponseKind::kUndecryptable);
}

TEST_F(SessionTest, FakeRequestsUseFreshDrops) {
  auto f1 = BuildFakeExchangeRequest(alice_, 10, rng_);
  auto f2 = BuildFakeExchangeRequest(alice_, 10, rng_);
  EXPECT_NE(f1.dead_drop, f2.dead_drop);
}

TEST(Padding, RoundTripsAllLengths) {
  util::Xoshiro256Rng rng(11);
  for (size_t len : {size_t{0}, size_t{1}, size_t{100}, kMaxTextLength}) {
    util::Bytes text = rng.RandomBytes(len);
    util::Bytes padded = PadMessage(text);
    EXPECT_EQ(padded.size(), wire::kMessageSize);
    auto unpadded = UnpadMessage(padded);
    ASSERT_TRUE(unpadded.has_value()) << len;
    EXPECT_EQ(*unpadded, text);
  }
}

TEST(Padding, RejectsOversizedText) {
  util::Bytes text(kMaxTextLength + 1, 'x');
  EXPECT_THROW(PadMessage(text), std::invalid_argument);
}

TEST(Padding, RejectsMalformedLength) {
  util::Bytes padded(wire::kMessageSize, 0);
  padded[0] = 0xff;  // claims length 0xff00 > kMaxTextLength
  EXPECT_FALSE(UnpadMessage(padded).has_value());
  EXPECT_FALSE(UnpadMessage(util::Bytes(10)).has_value());
}

TEST(Padding, PaddedSizeIsConstant) {
  // Identical envelope size for any message length — the observable property
  // that makes message content invisible (§3.2).
  EXPECT_EQ(PadMessage({}).size(), PadMessage(util::Bytes(kMaxTextLength, 1)).size());
}

}  // namespace
}  // namespace vuvuzela::conversation
