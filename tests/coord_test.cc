// Coordination layer tests: round schedule, entry server mux/demux,
// invitation distributor accounting.

#include <gtest/gtest.h>

#include <fstream>

#include "src/conversation/protocol.h"
#include "src/coord/coordinator.h"
#include "src/coord/distributor.h"
#include "src/coord/entry_server.h"
#include "src/coord/keydir.h"
#include "src/crypto/onion.h"
#include "src/util/bytes.h"
#include "src/util/random.h"

namespace vuvuzela::coord {
namespace {

TEST(RoundSchedule, InterleavesDialingRounds) {
  RoundSchedule schedule(ScheduleConfig{.conversation_rounds_per_dialing_round = 3,
                                        .dial_dead_drops = 5});
  std::vector<wire::RoundType> types;
  for (int i = 0; i < 8; ++i) {
    types.push_back(schedule.Next().type);
  }
  EXPECT_EQ(types, (std::vector<wire::RoundType>{
                       wire::RoundType::kConversation, wire::RoundType::kConversation,
                       wire::RoundType::kConversation, wire::RoundType::kDialing,
                       wire::RoundType::kConversation, wire::RoundType::kConversation,
                       wire::RoundType::kConversation, wire::RoundType::kDialing}));
  EXPECT_EQ(schedule.conversation_rounds_announced(), 6u);
  EXPECT_EQ(schedule.dialing_rounds_announced(), 2u);
}

TEST(RoundSchedule, RoundNumberSpacesDisjoint) {
  RoundSchedule schedule(ScheduleConfig{.conversation_rounds_per_dialing_round = 1,
                                        .dial_dead_drops = 1});
  for (int i = 0; i < 10; ++i) {
    wire::RoundAnnouncement ann = schedule.Next();
    if (ann.type == wire::RoundType::kDialing) {
      EXPECT_GE(ann.round, kDialingRoundBase);
      EXPECT_EQ(ann.num_dial_dead_drops, 1u);
    } else {
      EXPECT_LT(ann.round, kDialingRoundBase);
    }
  }
}

TEST(RoundSchedule, MonotoneRoundNumbers) {
  RoundSchedule schedule(ScheduleConfig{.conversation_rounds_per_dialing_round = 2,
                                        .dial_dead_drops = 1});
  uint64_t last_conv = 0, last_dial = kDialingRoundBase - 1;
  for (int i = 0; i < 20; ++i) {
    wire::RoundAnnouncement ann = schedule.Next();
    if (ann.type == wire::RoundType::kConversation) {
      EXPECT_GT(ann.round, last_conv);
      last_conv = ann.round;
    } else {
      EXPECT_GT(ann.round, last_dial);
      last_dial = ann.round;
    }
  }
}

class EntryServerTest : public ::testing::Test {
 protected:
  EntryServerTest() {
    mixnet::ChainConfig config;
    config.num_servers = 2;
    config.conversation_noise = {.params = {2.0, 1.0}, .deterministic = true};
    config.dialing_noise = {.params = {2.0, 1.0}, .deterministic = true};
    config.parallel = false;
    chain_ = std::make_unique<mixnet::Chain>(mixnet::Chain::Create(config, rng_));
    entry_ = std::make_unique<EntryServer>(chain_.get());
  }

  util::Bytes MakeOnion(uint64_t round, const crypto::X25519KeyPair& user) {
    auto request = conversation::BuildFakeExchangeRequest(user, round, rng_);
    return crypto::OnionWrap(chain_->public_keys(), round, request.Serialize(), rng_).data;
  }

  util::Xoshiro256Rng rng_{42};
  std::unique_ptr<mixnet::Chain> chain_;
  std::unique_ptr<EntryServer> entry_;
};

TEST_F(EntryServerTest, MuxAndDemux) {
  auto user1 = crypto::X25519KeyPair::Generate(rng_);
  auto user2 = crypto::X25519KeyPair::Generate(rng_);
  size_t slot1 = entry_->Submit(7, MakeOnion(7, user1));
  size_t slot2 = entry_->Submit(7, MakeOnion(7, user2));
  EXPECT_EQ(entry_->PendingCount(7), 2u);

  auto result = entry_->CloseConversationRound(7);
  EXPECT_EQ(result.responses.size(), 2u);
  util::Bytes r1 = entry_->TakeResponse(7, slot1);
  util::Bytes r2 = entry_->TakeResponse(7, slot2);
  EXPECT_FALSE(r1.empty());
  EXPECT_FALSE(r2.empty());
}

TEST_F(EntryServerTest, SubmitAfterCloseThrows) {
  auto user = crypto::X25519KeyPair::Generate(rng_);
  entry_->Submit(8, MakeOnion(8, user));
  entry_->CloseConversationRound(8);
  EXPECT_THROW(entry_->Submit(8, MakeOnion(8, user)), std::logic_error);
  EXPECT_THROW(entry_->CloseConversationRound(8), std::logic_error);
}

TEST_F(EntryServerTest, TakeResponseValidation) {
  EXPECT_THROW(entry_->TakeResponse(99, 0), std::logic_error);  // round not closed
  auto user = crypto::X25519KeyPair::Generate(rng_);
  entry_->Submit(9, MakeOnion(9, user));
  entry_->CloseConversationRound(9);
  EXPECT_THROW(entry_->TakeResponse(9, 5), std::out_of_range);  // bad slot
}

TEST(InvitationDistributor, ServesAndAccounts) {
  InvitationDistributor distributor;
  deaddrop::InvitationTable table(2);
  util::Xoshiro256Rng rng(1);
  std::vector<uint64_t> counts = {3, 1};
  table.AddNoise(counts, rng);
  distributor.Publish(100, std::move(table));

  ASSERT_TRUE(distributor.HasRound(100));
  const auto& drop = distributor.Fetch(100, 0);
  EXPECT_EQ(drop.size(), 3u);
  EXPECT_EQ(distributor.bytes_served(), 3 * wire::kInvitationSize);
  EXPECT_EQ(distributor.downloads_served(), 1u);

  distributor.Fetch(100, 1);
  EXPECT_EQ(distributor.bytes_served(), 4 * wire::kInvitationSize);
}

TEST(InvitationDistributor, UnknownRoundThrows) {
  InvitationDistributor distributor;
  EXPECT_THROW(distributor.Fetch(1, 0), std::out_of_range);
}

TEST(InvitationDistributor, ExpiresOldRounds) {
  InvitationDistributor distributor;
  for (uint64_t r = 1; r <= 5; ++r) {
    distributor.Publish(r, deaddrop::InvitationTable(1));
  }
  distributor.Expire(/*keep_latest=*/2);
  EXPECT_FALSE(distributor.HasRound(1));
  EXPECT_FALSE(distributor.HasRound(3));
  EXPECT_TRUE(distributor.HasRound(4));
  EXPECT_TRUE(distributor.HasRound(5));
}

TEST(InvitationDistributor, ExpireKeepZeroDropsEverything) {
  InvitationDistributor distributor;
  distributor.Publish(1, deaddrop::InvitationTable(1));
  distributor.Publish(2, deaddrop::InvitationTable(1));
  distributor.Expire(/*keep_latest=*/0);
  EXPECT_FALSE(distributor.HasRound(1));
  EXPECT_FALSE(distributor.HasRound(2));
  // And the empty distributor tolerates further expiry.
  distributor.Expire(0);
  distributor.Expire(3);
}

TEST(InvitationDistributor, FetchAfterExpireThrows) {
  InvitationDistributor distributor;
  deaddrop::InvitationTable table(1);
  util::Xoshiro256Rng rng(7);
  std::vector<uint64_t> counts = {2};
  table.AddNoise(counts, rng);
  distributor.Publish(10, std::move(table));
  ASSERT_EQ(distributor.Fetch(10, 0).size(), 2u);
  distributor.Expire(0);
  EXPECT_THROW(distributor.Fetch(10, 0), std::out_of_range);
  // The failed fetch must not count as a served download.
  EXPECT_EQ(distributor.downloads_served(), 1u);
  EXPECT_EQ(distributor.bytes_served(), 2 * wire::kInvitationSize);
}

TEST(InvitationDistributor, PublishOverExistingRoundReplacesWithoutLeakingExpirySlot) {
  InvitationDistributor distributor;
  deaddrop::InvitationTable first(1);
  util::Xoshiro256Rng rng(8);
  std::vector<uint64_t> one = {1};
  first.AddNoise(one, rng);
  distributor.Publish(5, std::move(first));

  // Re-publishing the same round (the coordinator's retry path) replaces the
  // table...
  deaddrop::InvitationTable second(1);
  std::vector<uint64_t> three = {3};
  second.AddNoise(three, rng);
  distributor.Publish(5, std::move(second));
  EXPECT_EQ(distributor.Fetch(5, 0).size(), 3u);

  // ...without occupying a second expiry slot: after one more publish,
  // keeping the 2 newest publications must retain both rounds (a duplicate
  // slot for round 5 would evict it here).
  distributor.Publish(6, deaddrop::InvitationTable(1));
  distributor.Expire(/*keep_latest=*/2);
  EXPECT_TRUE(distributor.HasRound(5));
  EXPECT_TRUE(distributor.HasRound(6));

  // A re-publish also refreshes the round to the *newest* expiry slot — a
  // round recovered by the retry path must not expire off its first
  // attempt's stale position before its downloads run.
  deaddrop::InvitationTable again(1);
  std::vector<uint64_t> two = {2};
  again.AddNoise(two, rng);
  distributor.Publish(5, std::move(again));  // 5 re-published after 6
  distributor.Publish(7, deaddrop::InvitationTable(1));
  distributor.Expire(/*keep_latest=*/2);
  EXPECT_TRUE(distributor.HasRound(5));   // newest-but-one
  EXPECT_TRUE(distributor.HasRound(7));   // newest
  EXPECT_FALSE(distributor.HasRound(6));  // displaced by 5's refresh
  EXPECT_EQ(distributor.Fetch(5, 0).size(), 2u);
}

class KeyDirectoryTest : public ::testing::Test {
 protected:
  util::Xoshiro256Rng rng_{314};
  crypto::X25519PublicKey KeyOf(uint64_t seed) {
    util::Xoshiro256Rng rng(seed);
    return crypto::X25519KeyPair::Generate(rng).public_key;
  }
  KeyDirectory dir_;
};

TEST_F(KeyDirectoryTest, ForwardAndReverseLookup) {
  auto bob_key = KeyOf(1);
  ASSERT_TRUE(dir_.AddContact("bob", bob_key));
  EXPECT_EQ(dir_.Lookup("bob"), bob_key);
  EXPECT_EQ(dir_.IdentifyCaller(bob_key), "bob");
  EXPECT_EQ(dir_.size(), 1u);
}

TEST_F(KeyDirectoryTest, UnknownLookupsEmpty) {
  EXPECT_FALSE(dir_.Lookup("nobody").has_value());
  EXPECT_FALSE(dir_.IdentifyCaller(KeyOf(2)).has_value());
}

TEST_F(KeyDirectoryTest, KeyRotationReplacesBinding) {
  auto old_key = KeyOf(3);
  auto new_key = KeyOf(4);
  ASSERT_TRUE(dir_.AddContact("carol", old_key));
  ASSERT_TRUE(dir_.AddContact("carol", new_key));
  EXPECT_EQ(dir_.Lookup("carol"), new_key);
  // The old key no longer identifies carol — stale invitations sealed to the
  // rotated-away key are anonymous (forward-secrecy hygiene, §9).
  EXPECT_FALSE(dir_.IdentifyCaller(old_key).has_value());
  EXPECT_EQ(dir_.IdentifyCaller(new_key), "carol");
}

TEST_F(KeyDirectoryTest, RejectsAmbiguousKey) {
  auto key = KeyOf(5);
  ASSERT_TRUE(dir_.AddContact("dave", key));
  EXPECT_FALSE(dir_.AddContact("impostor", key));
  EXPECT_EQ(dir_.IdentifyCaller(key), "dave");
  EXPECT_FALSE(dir_.Lookup("impostor").has_value());
}

TEST_F(KeyDirectoryTest, RemoveContact) {
  auto key = KeyOf(6);
  dir_.AddContact("erin", key);
  EXPECT_TRUE(dir_.RemoveContact("erin"));
  EXPECT_FALSE(dir_.RemoveContact("erin"));
  EXPECT_FALSE(dir_.Lookup("erin").has_value());
  EXPECT_FALSE(dir_.IdentifyCaller(key).has_value());
}

TEST_F(KeyDirectoryTest, ContactNamesSorted) {
  dir_.AddContact("zoe", KeyOf(7));
  dir_.AddContact("abe", KeyOf(8));
  dir_.AddContact("mia", KeyOf(9));
  EXPECT_EQ(dir_.ContactNames(), (std::vector<std::string>{"abe", "mia", "zoe"}));
}

// --- Key-ceremony files (hopd/coordd --key-file / --key-dir) -----------------

TEST_F(KeyDirectoryTest, DirectoryFileRoundTrips) {
  dir_.AddContact("hop0", KeyOf(10));
  dir_.AddContact("hop1", KeyOf(11));
  dir_.AddContact("hop2", KeyOf(12));
  std::string path = ::testing::TempDir() + "vz_chain_roundtrip.pub";
  ASSERT_TRUE(dir_.SaveToFile(path));

  auto loaded = KeyDirectory::LoadFromFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->ChainLength(), 3u);
  auto chain = loaded->ChainPublicKeys(3);
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ((*chain)[1], KeyOf(11));
  EXPECT_FALSE(loaded->ChainPublicKeys(4).has_value());  // hop3 missing
}

TEST_F(KeyDirectoryTest, LoadRejectsMalformedFiles) {
  std::string path = ::testing::TempDir() + "vz_chain_bad.pub";
  auto write = [&](const std::string& content) {
    std::ofstream out(path, std::ios::trunc);
    out << content;
  };
  write("not-a-directory\nhop0 00\n");
  EXPECT_FALSE(KeyDirectory::LoadFromFile(path).has_value());  // bad magic
  write("vuvuzela-key-directory-v1\nhop0 zz\n");
  EXPECT_FALSE(KeyDirectory::LoadFromFile(path).has_value());  // bad hex
  write("vuvuzela-key-directory-v1\nhop0 " + util::HexEncode(KeyOf(1)) + " trailing\n");
  EXPECT_FALSE(KeyDirectory::LoadFromFile(path).has_value());  // trailing field
  // The same key under two names is as invalid on disk as via AddContact.
  std::string hex = util::HexEncode(KeyOf(1));
  write("vuvuzela-key-directory-v1\nhop0 " + hex + "\nhop1 " + hex + "\n");
  EXPECT_FALSE(KeyDirectory::LoadFromFile(path).has_value());
  EXPECT_FALSE(KeyDirectory::LoadFromFile(path + ".missing").has_value());
}

TEST(HopKeyFile, RoundTripsAndDerivesPublicKey) {
  util::Xoshiro256Rng rng(2718);
  HopKeyFile key;
  key.position = 2;
  key.key_pair = crypto::X25519KeyPair::Generate(rng);
  rng.Fill(key.noise_seed);
  std::string path = ::testing::TempDir() + "vz_hop2.key";
  ASSERT_TRUE(WriteHopKeyFile(path, key));

  auto loaded = ReadHopKeyFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->position, 2u);
  EXPECT_EQ(loaded->key_pair.secret_key, key.key_pair.secret_key);
  EXPECT_EQ(loaded->noise_seed, key.noise_seed);
  // The public half is recomputed from the secret, never read from disk.
  EXPECT_EQ(loaded->key_pair.public_key, key.key_pair.public_key);
}

TEST(HopKeyFile, RejectsTruncatedFiles) {
  std::string path = ::testing::TempDir() + "vz_hop_bad.key";
  std::ofstream(path, std::ios::trunc)
      << "vuvuzela-hop-key-v1\nposition 0\nsecret 00ff\n";  // short secret, no seed
  EXPECT_FALSE(ReadHopKeyFile(path).has_value());
  EXPECT_FALSE(ReadHopKeyFile(path + ".missing").has_value());
}

}  // namespace
}  // namespace vuvuzela::coord
