// ChaCha20-Poly1305 AEAD against RFC 8439 §2.8.2 and §A.5 vectors, plus
// tamper-rejection properties.

#include <gtest/gtest.h>

#include <cstring>

#include "src/crypto/aead.h"
#include "src/util/bytes.h"
#include "src/util/random.h"

namespace vuvuzela::crypto {
namespace {

using util::Bytes;
using util::HexDecode;
using util::HexEncode;

AeadKey KeyFromHex(const std::string& hex) {
  Bytes raw = HexDecode(hex);
  AeadKey key;
  std::memcpy(key.data(), raw.data(), key.size());
  return key;
}

AeadNonce NonceFromHex(const std::string& hex) {
  Bytes raw = HexDecode(hex);
  AeadNonce nonce;
  std::memcpy(nonce.data(), raw.data(), nonce.size());
  return nonce;
}

TEST(Aead, Rfc8439SealVector) {
  AeadKey key = KeyFromHex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  AeadNonce nonce = NonceFromHex("070000004041424344454647");
  Bytes aad = HexDecode("50515253c0c1c2c3c4c5c6c7");
  const char* text =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  util::ByteSpan plaintext(reinterpret_cast<const uint8_t*>(text), std::strlen(text));

  Bytes sealed = AeadSeal(key, nonce, aad, plaintext);
  EXPECT_EQ(HexEncode(sealed),
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"
            "3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"
            "92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"
            "3ff4def08e4b7a9de576d26586cec64b6116"
            "1ae10b594f09e26a7e902ecbd0600691");

  auto opened = AeadOpen(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(util::ByteSpan(*opened).size(), plaintext.size());
  EXPECT_TRUE(util::ConstantTimeEqual(*opened, plaintext));
}

TEST(Aead, RfcA5DecryptionVector) {
  AeadKey key = KeyFromHex("1c9240a5eb55d38af333888604f6b5f0473917c1402b80099dca5cbc207075c0");
  AeadNonce nonce = NonceFromHex("000000000102030405060708");
  Bytes aad = HexDecode("f33388860000000000004e91");
  Bytes ciphertext_and_tag = HexDecode(
      "64a0861575861af460f062c79be643bd5e805cfd345cf389f108670ac76c8cb2"
      "4c6cfc18755d43eea09ee94e382d26b0bdb7b73c321b0100d4f03b7f355894cf"
      "332f830e710b97ce98c8a84abd0b948114ad176e008d33bd60f982b1ff37c855"
      "9797a06ef4f0ef61c186324e2b3506383606907b6a7c02b0f9f6157b53c867e4"
      "b9166c767b804d46a59b5216cde7a4e99040c5a40433225ee282a1b0a06c523e"
      "af4534d7f83fa1155b0047718cbc546a0d072b04b3564eea1b422273f548271a"
      "0bb2316053fa76991955ebd63159434ecebb4e466dae5a1073a6727627097a10"
      "49e617d91d361094fa68f0ff77987130305beaba2eda04df997b714d6c6f2c29"
      "a6ad5cb4022b02709b"
      "eead9d67890cbb22392336fea1851f38");
  auto opened = AeadOpen(key, nonce, aad, ciphertext_and_tag);
  ASSERT_TRUE(opened.has_value());
  std::string plaintext(opened->begin(), opened->end());
  EXPECT_EQ(plaintext.size(), 265u);
  EXPECT_TRUE(plaintext.starts_with("Internet-Drafts are draft documents"));
  EXPECT_NE(plaintext.find("work in progress"), std::string::npos);
}

TEST(Aead, RejectsTamperedCiphertext) {
  AeadKey key{};
  AeadNonce nonce{};
  Bytes sealed = AeadSeal(key, nonce, {}, HexDecode("00112233"));
  for (size_t i = 0; i < sealed.size(); ++i) {
    Bytes tampered = sealed;
    tampered[i] ^= 0x01;
    EXPECT_FALSE(AeadOpen(key, nonce, {}, tampered).has_value()) << "byte " << i;
  }
}

TEST(Aead, RejectsWrongAad) {
  AeadKey key{};
  AeadNonce nonce{};
  Bytes sealed = AeadSeal(key, nonce, HexDecode("aa"), HexDecode("00112233"));
  EXPECT_FALSE(AeadOpen(key, nonce, HexDecode("ab"), sealed).has_value());
  EXPECT_FALSE(AeadOpen(key, nonce, {}, sealed).has_value());
  EXPECT_TRUE(AeadOpen(key, nonce, HexDecode("aa"), sealed).has_value());
}

TEST(Aead, RejectsWrongNonce) {
  AeadKey key{};
  Bytes sealed = AeadSeal(key, NonceFromUint64(7), {}, HexDecode("00112233"));
  EXPECT_FALSE(AeadOpen(key, NonceFromUint64(8), {}, sealed).has_value());
  EXPECT_FALSE(AeadOpen(key, NonceFromUint64(7, 1), {}, sealed).has_value());
  EXPECT_TRUE(AeadOpen(key, NonceFromUint64(7), {}, sealed).has_value());
}

TEST(Aead, RejectsTruncatedInput) {
  AeadKey key{};
  AeadNonce nonce{};
  EXPECT_FALSE(AeadOpen(key, nonce, {}, Bytes(15)).has_value());
  EXPECT_FALSE(AeadOpen(key, nonce, {}, Bytes{}).has_value());
}

TEST(Aead, EmptyPlaintextRoundTrips) {
  AeadKey key{};
  AeadNonce nonce{};
  Bytes sealed = AeadSeal(key, nonce, {}, {});
  EXPECT_EQ(sealed.size(), kAeadTagSize);
  auto opened = AeadOpen(key, nonce, {}, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

class AeadRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AeadRoundTripTest, SealOpenRoundTrip) {
  util::Xoshiro256Rng rng(GetParam() + 1);
  AeadKey key;
  rng.Fill(key);
  AeadNonce nonce;
  rng.Fill(nonce);
  Bytes plaintext = rng.RandomBytes(GetParam());
  Bytes aad = rng.RandomBytes(GetParam() % 32);

  Bytes sealed = AeadSeal(key, nonce, aad, plaintext);
  EXPECT_EQ(sealed.size(), plaintext.size() + kAeadTagSize);
  auto opened = AeadOpen(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AeadRoundTripTest,
                         ::testing::Values(1, 15, 16, 17, 63, 64, 65, 240, 256, 1000, 4096));

TEST(Aead, NonceFromUint64Layout) {
  AeadNonce n = NonceFromUint64(0x0102030405060708ULL, 0xa0b0c0d0);
  EXPECT_EQ(util::LoadLe32(n.data()), 0xa0b0c0d0u);
  EXPECT_EQ(util::LoadLe64(n.data() + 4), 0x0102030405060708ULL);
}

}  // namespace
}  // namespace vuvuzela::crypto
