// Box / SealedBox construction tests: round trips, key separation, and the
// 48-byte sealed-box overhead the dialing protocol's 80-byte invitations
// depend on (§8.1).

#include <gtest/gtest.h>

#include "src/crypto/box.h"
#include "src/crypto/drbg.h"
#include "src/util/bytes.h"
#include "src/util/random.h"

namespace vuvuzela::crypto {
namespace {

using util::Bytes;

class BoxTest : public ::testing::Test {
 protected:
  util::Xoshiro256Rng rng_{101};
  X25519KeyPair alice_ = X25519KeyPair::Generate(rng_);
  X25519KeyPair bob_ = X25519KeyPair::Generate(rng_);
  X25519KeyPair eve_ = X25519KeyPair::Generate(rng_);
  Bytes context_ = {'t', 'e', 's', 't'};
};

TEST_F(BoxTest, RoundTrip) {
  Bytes msg = {1, 2, 3, 4, 5};
  AeadNonce nonce = NonceFromUint64(1);
  Bytes sealed = BoxSeal(alice_.secret_key, bob_.public_key, nonce, context_, msg);
  EXPECT_EQ(sealed.size(), msg.size() + kBoxOverhead);
  auto opened = BoxOpen(bob_.secret_key, alice_.public_key, nonce, context_, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST_F(BoxTest, SymmetricDerivation) {
  // Both directions derive the same key: Bob can also seal to Alice and she
  // opens with Bob's public key.
  Bytes msg = {9, 9, 9};
  AeadNonce nonce = NonceFromUint64(2);
  Bytes sealed = BoxSeal(bob_.secret_key, alice_.public_key, nonce, context_, msg);
  auto opened = BoxOpen(alice_.secret_key, bob_.public_key, nonce, context_, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST_F(BoxTest, WrongRecipientFails) {
  Bytes msg = {1, 2, 3};
  AeadNonce nonce = NonceFromUint64(3);
  Bytes sealed = BoxSeal(alice_.secret_key, bob_.public_key, nonce, context_, msg);
  EXPECT_FALSE(BoxOpen(eve_.secret_key, alice_.public_key, nonce, context_, sealed).has_value());
}

TEST_F(BoxTest, WrongSenderKeyFails) {
  Bytes msg = {1, 2, 3};
  AeadNonce nonce = NonceFromUint64(4);
  Bytes sealed = BoxSeal(alice_.secret_key, bob_.public_key, nonce, context_, msg);
  EXPECT_FALSE(BoxOpen(bob_.secret_key, eve_.public_key, nonce, context_, sealed).has_value());
}

TEST_F(BoxTest, WrongContextFails) {
  Bytes msg = {1, 2, 3};
  AeadNonce nonce = NonceFromUint64(5);
  Bytes sealed = BoxSeal(alice_.secret_key, bob_.public_key, nonce, context_, msg);
  Bytes other_context = {'o', 't', 'h', 'e', 'r'};
  EXPECT_FALSE(
      BoxOpen(bob_.secret_key, alice_.public_key, nonce, other_context, sealed).has_value());
}

TEST_F(BoxTest, WrongNonceFails) {
  Bytes msg = {1, 2, 3};
  Bytes sealed = BoxSeal(alice_.secret_key, bob_.public_key, NonceFromUint64(6), context_, msg);
  EXPECT_FALSE(
      BoxOpen(bob_.secret_key, alice_.public_key, NonceFromUint64(7), context_, sealed)
          .has_value());
}

TEST_F(BoxTest, SealedBoxRoundTrip) {
  Bytes msg(32, 0x42);
  Bytes sealed = SealedBoxSeal(bob_.public_key, context_, msg, rng_);
  EXPECT_EQ(sealed.size(), msg.size() + kSealedBoxOverhead);
  auto opened = SealedBoxOpen(bob_, context_, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST_F(BoxTest, SealedBoxInvitationSizeMatchesPaper) {
  // §8.1: invitations are 80 bytes long including 48 bytes of overhead.
  Bytes sender_pk(kX25519KeySize, 0x01);  // payload = a 32-byte public key
  Bytes sealed = SealedBoxSeal(bob_.public_key, context_, sender_pk, rng_);
  EXPECT_EQ(sealed.size(), 80u);
}

TEST_F(BoxTest, SealedBoxWrongRecipientFails) {
  Bytes msg(32, 0x42);
  Bytes sealed = SealedBoxSeal(bob_.public_key, context_, msg, rng_);
  EXPECT_FALSE(SealedBoxOpen(eve_, context_, sealed).has_value());
}

TEST_F(BoxTest, SealedBoxIsNondeterministic) {
  // Fresh ephemeral keys per seal: same message, different ciphertexts. This
  // is what makes invitations unlinkable across rounds.
  Bytes msg(32, 0x42);
  Bytes s1 = SealedBoxSeal(bob_.public_key, context_, msg, rng_);
  Bytes s2 = SealedBoxSeal(bob_.public_key, context_, msg, rng_);
  EXPECT_NE(s1, s2);
}

TEST_F(BoxTest, SealedBoxRejectsTruncated) {
  EXPECT_FALSE(SealedBoxOpen(bob_, context_, Bytes(kSealedBoxOverhead - 1)).has_value());
  EXPECT_FALSE(SealedBoxOpen(bob_, context_, Bytes{}).has_value());
}

TEST_F(BoxTest, SealedBoxTamperRejected) {
  Bytes msg(32, 0x42);
  Bytes sealed = SealedBoxSeal(bob_.public_key, context_, msg, rng_);
  for (size_t i : {size_t{0}, size_t{31}, size_t{32}, sealed.size() - 1}) {
    Bytes tampered = sealed;
    tampered[i] ^= 1;
    EXPECT_FALSE(SealedBoxOpen(bob_, context_, tampered).has_value()) << "byte " << i;
  }
}

TEST(ChaChaRng, DeterministicForSeed) {
  ChaCha20Key seed{};
  seed[0] = 7;
  ChaChaRng a(seed), b(seed);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  EXPECT_EQ(a.RandomBytes(100), b.RandomBytes(100));
}

TEST(ChaChaRng, DifferentSeedsDiverge) {
  ChaCha20Key s1{}, s2{};
  s2[0] = 1;
  ChaChaRng a(s1), b(s2);
  EXPECT_NE(a.RandomBytes(32), b.RandomBytes(32));
}

TEST(ChaChaRng, OutputLooksUniform) {
  ChaChaRng rng = ChaChaRng::FromSystem();
  util::Bytes buf = rng.RandomBytes(4096);
  size_t zeros = 0;
  for (uint8_t x : buf) {
    zeros += (x == 0);
  }
  EXPECT_LT(zeros, 100);  // expected ~16
}

TEST(ChaChaRng, UniformBoundWorks) {
  ChaCha20Key seed{};
  ChaChaRng rng(seed);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
  }
}

}  // namespace
}  // namespace vuvuzela::crypto
