// ChaCha20 against RFC 8439 §2.3.2 / §2.4.2 vectors.

#include <gtest/gtest.h>

#include <cstring>

#include "src/crypto/chacha20.h"
#include "src/util/bytes.h"
#include "src/util/random.h"

namespace vuvuzela::crypto {
namespace {

using util::Bytes;
using util::HexDecode;
using util::HexEncode;

ChaCha20Key TestKey() {
  ChaCha20Key key;
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(i);
  }
  return key;
}

TEST(ChaCha20, Rfc8439BlockFunction) {
  ChaCha20Key key = TestKey();
  ChaCha20Nonce nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  uint8_t block[kChaCha20BlockSize];
  ChaCha20Block(key, nonce, 1, block);
  EXPECT_EQ(HexEncode(util::ByteSpan(block, sizeof(block))),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439Encryption) {
  ChaCha20Key key = TestKey();
  ChaCha20Nonce nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const char* text =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  util::ByteSpan plaintext(reinterpret_cast<const uint8_t*>(text), std::strlen(text));
  Bytes ciphertext(plaintext.size());
  ChaCha20Xor(key, nonce, 1, plaintext, ciphertext);
  EXPECT_EQ(HexEncode(ciphertext),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, XorIsInvolution) {
  ChaCha20Key key = TestKey();
  ChaCha20Nonce nonce{};
  util::Xoshiro256Rng rng(77);
  Bytes plaintext = rng.RandomBytes(300);
  Bytes ciphertext(plaintext.size());
  ChaCha20Xor(key, nonce, 5, plaintext, ciphertext);
  Bytes decrypted(ciphertext.size());
  ChaCha20Xor(key, nonce, 5, ciphertext, decrypted);
  EXPECT_EQ(decrypted, plaintext);
}

TEST(ChaCha20, InPlaceXor) {
  ChaCha20Key key = TestKey();
  ChaCha20Nonce nonce{};
  Bytes data = {1, 2, 3, 4, 5};
  Bytes original = data;
  ChaCha20Xor(key, nonce, 0, data, data);
  EXPECT_NE(data, original);
  ChaCha20Xor(key, nonce, 0, data, data);
  EXPECT_EQ(data, original);
}

TEST(ChaCha20, SizeMismatchThrows) {
  ChaCha20Key key{};
  ChaCha20Nonce nonce{};
  Bytes in(10), out(11);
  EXPECT_THROW(ChaCha20Xor(key, nonce, 0, in, out), std::invalid_argument);
}

TEST(ChaCha20, CounterAdvancesPerBlock) {
  // Encrypting [block0 ‖ block1] at counter 0 equals encrypting block1 alone
  // at counter 1.
  ChaCha20Key key = TestKey();
  ChaCha20Nonce nonce{};
  Bytes zeros(128, 0);
  Bytes both(128);
  ChaCha20Xor(key, nonce, 0, zeros, both);
  Bytes second(64);
  ChaCha20Xor(key, nonce, 1, util::ByteSpan(zeros.data(), 64), second);
  EXPECT_EQ(Bytes(both.begin() + 64, both.end()), second);
}

TEST(ChaCha20, DistinctNoncesDistinctStreams) {
  ChaCha20Key key = TestKey();
  ChaCha20Nonce n1{}, n2{};
  n2[0] = 1;
  Bytes zeros(64, 0), s1(64), s2(64);
  ChaCha20Xor(key, n1, 0, zeros, s1);
  ChaCha20Xor(key, n2, 0, zeros, s2);
  EXPECT_NE(s1, s2);
}

}  // namespace
}  // namespace vuvuzela::crypto
