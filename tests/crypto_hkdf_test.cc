// HMAC-SHA256 against RFC 4231 and HKDF against RFC 5869 vectors.

#include <gtest/gtest.h>

#include "src/crypto/hkdf.h"
#include "src/util/bytes.h"

namespace vuvuzela::crypto {
namespace {

using util::Bytes;
using util::HexDecode;
using util::HexEncode;

TEST(HmacSha256, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes data = HexDecode("4869205468657265");  // "Hi There"
  EXPECT_EQ(HexEncode(HmacSha256(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  // Key shorter than block, data "what do ya want for nothing?".
  Bytes key = HexDecode("4a656665");  // "Jefe"
  Bytes data = HexDecode("7768617420646f2079612077616e7420666f72206e6f7468696e673f");
  EXPECT_EQ(HexEncode(HmacSha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(HexEncode(HmacSha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6KeyLongerThanBlock) {
  Bytes key(131, 0xaa);
  Bytes data = HexDecode(
      "54657374205573696e67204c6172676572205468616e20426c6f636b2d53697a"
      "65204b6579202d2048617368204b6579204669727374");
  EXPECT_EQ(HexEncode(HmacSha256(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, Rfc4231Case7KeyAndDataLongerThanBlock) {
  Bytes key(131, 0xaa);
  Bytes data = HexDecode(
      "5468697320697320612074657374207573696e672061206c6172676572207468"
      "616e20626c6f636b2d73697a65206b657920616e642061206c61726765722074"
      "68616e20626c6f636b2d73697a6520646174612e20546865206b6579206e6565"
      "647320746f20626520686173686564206265666f7265206265696e6720757365"
      "642062792074686520484d414320616c676f726974686d2e");
  EXPECT_EQ(HexEncode(HmacSha256(key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(Hkdf, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = HexDecode("000102030405060708090a0b0c");
  Bytes info = HexDecode("f0f1f2f3f4f5f6f7f8f9");
  Bytes okm = Hkdf(salt, ikm, info, 42);
  EXPECT_EQ(HexEncode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case2LongInputs) {
  Bytes ikm, salt, info;
  for (int i = 0x00; i <= 0x4f; ++i) {
    ikm.push_back(static_cast<uint8_t>(i));
  }
  for (int i = 0x60; i <= 0xaf; ++i) {
    salt.push_back(static_cast<uint8_t>(i));
  }
  for (int i = 0xb0; i <= 0xff; ++i) {
    info.push_back(static_cast<uint8_t>(i));
  }
  Bytes okm = Hkdf(salt, ikm, info, 82);
  EXPECT_EQ(HexEncode(okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87");
}

TEST(Hkdf, Rfc5869Case3EmptySaltAndInfo) {
  Bytes ikm(22, 0x0b);
  Bytes okm = Hkdf({}, ikm, {}, 42);
  EXPECT_EQ(HexEncode(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, ExpandRejectsOversizedOutput) {
  Bytes prk(32, 0x42);
  EXPECT_THROW(HkdfExpand(prk, {}, 255 * 32 + 1), std::invalid_argument);
}

TEST(Hkdf, DistinctInfoGivesDistinctKeys) {
  Bytes ikm(32, 0x01);
  Bytes a = Hkdf({}, ikm, HexDecode("aa"), 32);
  Bytes b = Hkdf({}, ikm, HexDecode("bb"), 32);
  EXPECT_NE(a, b);
}

TEST(Hkdf, OutputLengthRespected) {
  Bytes ikm(32, 0x01);
  for (size_t len : {0u, 1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(Hkdf({}, ikm, {}, len).size(), len);
  }
}

// Expand is a prefix-consistent stream: okm(64)[0:32] == okm(32).
TEST(Hkdf, ExpandIsPrefixConsistent) {
  Bytes ikm(32, 0x07);
  Bytes long_out = Hkdf({}, ikm, {}, 64);
  Bytes short_out = Hkdf({}, ikm, {}, 32);
  EXPECT_EQ(Bytes(long_out.begin(), long_out.begin() + 32), short_out);
}

}  // namespace
}  // namespace vuvuzela::crypto
