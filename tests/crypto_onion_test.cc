// Onion wrap/unwrap tests across chain lengths (the paper evaluates 1-6
// servers in Figure 11), response-path round trips, and tamper rejection.

#include <gtest/gtest.h>

#include <vector>

#include "src/crypto/onion.h"
#include "src/util/bytes.h"
#include "src/util/random.h"

namespace vuvuzela::crypto {
namespace {

using util::Bytes;

struct Chain {
  std::vector<X25519KeyPair> servers;
  std::vector<X25519PublicKey> public_keys;
};

Chain MakeChain(size_t n, util::Rng& rng) {
  Chain chain;
  for (size_t i = 0; i < n; ++i) {
    chain.servers.push_back(X25519KeyPair::Generate(rng));
    chain.public_keys.push_back(chain.servers.back().public_key);
  }
  return chain;
}

class OnionChainTest : public ::testing::TestWithParam<size_t> {};

TEST_P(OnionChainTest, RequestUnwrapsThroughChain) {
  size_t n = GetParam();
  util::Xoshiro256Rng rng(n * 31 + 1);
  Chain chain = MakeChain(n, rng);
  Bytes payload = rng.RandomBytes(272);
  uint64_t round = 42;

  WrappedOnion onion = OnionWrap(chain.public_keys, round, payload, rng);
  EXPECT_EQ(onion.data.size(), OnionRequestSize(payload.size(), n));
  EXPECT_EQ(onion.layer_keys.size(), n);

  Bytes current = onion.data;
  for (size_t i = 0; i < n; ++i) {
    auto unwrapped = OnionUnwrapLayer(chain.servers[i].secret_key, round, current);
    ASSERT_TRUE(unwrapped.has_value()) << "layer " << i;
    // Server's derived key matches the one the client retained.
    EXPECT_EQ(unwrapped->response_key, onion.layer_keys[i]);
    current = std::move(unwrapped->inner);
  }
  EXPECT_EQ(current, payload);
}

TEST_P(OnionChainTest, ResponseRoundTrips) {
  size_t n = GetParam();
  util::Xoshiro256Rng rng(n * 31 + 2);
  Chain chain = MakeChain(n, rng);
  uint64_t round = 43;
  WrappedOnion onion = OnionWrap(chain.public_keys, round, rng.RandomBytes(16), rng);

  // Last server produces a response; every server seals on the way back, in
  // reverse chain order (server n first, server 1 last).
  Bytes response = rng.RandomBytes(256);
  Bytes current = response;
  for (size_t i = n; i-- > 0;) {
    current = OnionSealResponse(onion.layer_keys[i], round, current);
  }
  EXPECT_EQ(current.size(), OnionResponseSize(response.size(), n));

  auto opened = OnionOpenResponse(onion.layer_keys, round, current);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, response);
}

INSTANTIATE_TEST_SUITE_P(ChainLengths, OnionChainTest, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Onion, WrongServerCannotUnwrap) {
  util::Xoshiro256Rng rng(7);
  Chain chain = MakeChain(3, rng);
  X25519KeyPair outsider = X25519KeyPair::Generate(rng);
  WrappedOnion onion = OnionWrap(chain.public_keys, 1, rng.RandomBytes(32), rng);
  EXPECT_FALSE(OnionUnwrapLayer(outsider.secret_key, 1, onion.data).has_value());
  // Second server cannot peel the first server's layer either.
  EXPECT_FALSE(OnionUnwrapLayer(chain.servers[1].secret_key, 1, onion.data).has_value());
}

TEST(Onion, WrongRoundRejected) {
  // Round binding prevents an adversary replaying a request in a later round
  // to correlate dead drops across rounds.
  util::Xoshiro256Rng rng(8);
  Chain chain = MakeChain(2, rng);
  WrappedOnion onion = OnionWrap(chain.public_keys, 10, rng.RandomBytes(32), rng);
  EXPECT_FALSE(OnionUnwrapLayer(chain.servers[0].secret_key, 11, onion.data).has_value());
  EXPECT_TRUE(OnionUnwrapLayer(chain.servers[0].secret_key, 10, onion.data).has_value());
}

TEST(Onion, TamperedLayerRejected) {
  util::Xoshiro256Rng rng(9);
  Chain chain = MakeChain(2, rng);
  WrappedOnion onion = OnionWrap(chain.public_keys, 1, rng.RandomBytes(32), rng);
  Bytes tampered = onion.data;
  tampered[40] ^= 0xff;  // inside the sealed portion (after the 32-byte pk)
  EXPECT_FALSE(OnionUnwrapLayer(chain.servers[0].secret_key, 1, tampered).has_value());
}

TEST(Onion, TruncatedLayerRejected) {
  util::Xoshiro256Rng rng(10);
  Chain chain = MakeChain(1, rng);
  EXPECT_FALSE(OnionUnwrapLayer(chain.servers[0].secret_key, 1,
                                Bytes(kOnionRequestLayerOverhead - 1))
                   .has_value());
}

TEST(Onion, EmptyChainIsIdentity) {
  util::Xoshiro256Rng rng(11);
  Bytes payload = rng.RandomBytes(64);
  WrappedOnion onion = OnionWrap({}, 1, payload, rng);
  EXPECT_EQ(onion.data, payload);
  EXPECT_TRUE(onion.layer_keys.empty());
  auto opened = OnionOpenResponse({}, 1, payload);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
}

TEST(Onion, FreshEphemeralsPerWrap) {
  // Wrapping the same payload twice yields unlinkable ciphertexts — the
  // "new keys for each individual message" requirement of §7.
  util::Xoshiro256Rng rng(12);
  Chain chain = MakeChain(3, rng);
  Bytes payload = rng.RandomBytes(32);
  WrappedOnion a = OnionWrap(chain.public_keys, 1, payload, rng);
  WrappedOnion b = OnionWrap(chain.public_keys, 1, payload, rng);
  EXPECT_NE(a.data, b.data);
  EXPECT_NE(a.layer_keys[0], b.layer_keys[0]);
}

TEST(Onion, ResponseTamperRejected) {
  util::Xoshiro256Rng rng(13);
  Chain chain = MakeChain(2, rng);
  WrappedOnion onion = OnionWrap(chain.public_keys, 5, rng.RandomBytes(16), rng);
  Bytes response = rng.RandomBytes(64);
  Bytes sealed = OnionSealResponse(onion.layer_keys[1], 5, response);
  sealed = OnionSealResponse(onion.layer_keys[0], 5, sealed);
  sealed[3] ^= 1;
  EXPECT_FALSE(OnionOpenResponse(onion.layer_keys, 5, sealed).has_value());
}

TEST(Onion, SizeFormulasMatchPaperOverheads) {
  // §8.1: conversation messages are 256 bytes including 16 bytes encryption
  // overhead; each onion layer adds 48 bytes.
  EXPECT_EQ(OnionRequestSize(0, 1), 48u);
  EXPECT_EQ(OnionRequestSize(256, 3), 256u + 144u);
  EXPECT_EQ(OnionResponseSize(256, 3), 256u + 48u);
}

}  // namespace
}  // namespace vuvuzela::crypto
