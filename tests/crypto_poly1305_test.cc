// Poly1305 against RFC 8439 §2.5.2 and §A.3 vectors.

#include <gtest/gtest.h>

#include <cstring>

#include "src/crypto/poly1305.h"
#include "src/util/bytes.h"
#include "src/util/random.h"

namespace vuvuzela::crypto {
namespace {

using util::Bytes;
using util::HexDecode;
using util::HexEncode;

Poly1305Key KeyFromHex(const std::string& hex) {
  Bytes raw = HexDecode(hex);
  Poly1305Key key;
  std::memcpy(key.data(), raw.data(), key.size());
  return key;
}

TEST(Poly1305, Rfc8439Vector) {
  Poly1305Key key =
      KeyFromHex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const char* text = "Cryptographic Forum Research Group";
  Poly1305Tag tag =
      Poly1305::Compute(key, util::ByteSpan(reinterpret_cast<const uint8_t*>(text), 34));
  EXPECT_EQ(HexEncode(tag), "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, A3ZeroKeyZeroMessage) {
  Poly1305Key key{};
  Bytes msg(64, 0);
  EXPECT_EQ(HexEncode(Poly1305::Compute(key, msg)), "00000000000000000000000000000000");
}

TEST(Poly1305, A3Test2) {
  // r = 0, s = 36e5f6b5c5e06070f0efca96227a863e; msg = 64-byte text block.
  Poly1305Key key =
      KeyFromHex("0000000000000000000000000000000036e5f6b5c5e06070f0efca96227a863e");
  const char* text =
      "Any submission to the IETF intended by the Contributor for publi"
      "cation as all or part of an IETF Internet-Draft or RFC and any s"
      "tatement made within the context of an IETF activity is consider"
      "ed an \"IETF Contribution\". Such statements include oral statemen"
      "ts in IETF sessions, as well as written and electronic communica"
      "tions made at any time or place, which are addressed to";
  util::ByteSpan msg(reinterpret_cast<const uint8_t*>(text), std::strlen(text));
  EXPECT_EQ(HexEncode(Poly1305::Compute(key, msg)), "36e5f6b5c5e06070f0efca96227a863e");
}

TEST(Poly1305, A3Test3) {
  // r = 36e5f6b5c5e06070f0efca96227a863e, s = 0; same message.
  Poly1305Key key =
      KeyFromHex("36e5f6b5c5e06070f0efca96227a863e00000000000000000000000000000000");
  const char* text =
      "Any submission to the IETF intended by the Contributor for publi"
      "cation as all or part of an IETF Internet-Draft or RFC and any s"
      "tatement made within the context of an IETF activity is consider"
      "ed an \"IETF Contribution\". Such statements include oral statemen"
      "ts in IETF sessions, as well as written and electronic communica"
      "tions made at any time or place, which are addressed to";
  util::ByteSpan msg(reinterpret_cast<const uint8_t*>(text), std::strlen(text));
  EXPECT_EQ(HexEncode(Poly1305::Compute(key, msg)), "f3477e7cd95417af89a6b8794c310cf0");
}

TEST(Poly1305, A3Test5CarryEdge) {
  // Tests a carry in the final addition: r = 2..0, msg = ff..ff.
  Poly1305Key key =
      KeyFromHex("0200000000000000000000000000000000000000000000000000000000000000");
  Bytes msg(16, 0xff);
  EXPECT_EQ(HexEncode(Poly1305::Compute(key, msg)), "03000000000000000000000000000000");
}

TEST(Poly1305, IncrementalMatchesOneShot) {
  Poly1305Key key =
      KeyFromHex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  util::Xoshiro256Rng rng(11);
  Bytes data = rng.RandomBytes(259);
  for (size_t chunk : {1u, 5u, 15u, 16u, 17u, 100u}) {
    Poly1305 p(key);
    for (size_t off = 0; off < data.size(); off += chunk) {
      p.Update(util::ByteSpan(data.data() + off, std::min(chunk, data.size() - off)));
    }
    EXPECT_EQ(p.Finish(), Poly1305::Compute(key, data)) << "chunk=" << chunk;
  }
}

TEST(Poly1305, EmptyMessage) {
  Poly1305Key key =
      KeyFromHex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  // For an empty message the tag is just s (the pad).
  EXPECT_EQ(HexEncode(Poly1305::Compute(key, {})), "0103808afb0db2fd4abff6af4149f51b");
}

TEST(Poly1305, FinishTwiceThrows) {
  Poly1305 p(Poly1305Key{});
  p.Finish();
  EXPECT_THROW(p.Finish(), std::logic_error);
}

}  // namespace
}  // namespace vuvuzela::crypto
