// Cross-cutting crypto property tests: algebraic identities and
// distributional properties that the protocol's privacy arguments lean on.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/conversation/protocol.h"
#include "src/crypto/box.h"
#include "src/crypto/drbg.h"
#include "src/crypto/onion.h"
#include "src/deaddrop/invitation_table.h"
#include "src/util/random.h"

namespace vuvuzela::crypto {
namespace {

TEST(X25519Property, GroupActionCommutes) {
  // X25519(a, g^b) == X25519(b, g^a) for many random pairs — the property
  // conversation sessions and dead-drop agreement rest on.
  util::Xoshiro256Rng rng(1);
  for (int i = 0; i < 16; ++i) {
    auto a = X25519KeyPair::Generate(rng);
    auto b = X25519KeyPair::Generate(rng);
    EXPECT_EQ(X25519(a.secret_key, b.public_key), X25519(b.secret_key, a.public_key));
  }
}

TEST(X25519Property, SharedSecretsPairwiseDistinct) {
  util::Xoshiro256Rng rng(2);
  auto alice = X25519KeyPair::Generate(rng);
  std::set<X25519SharedSecret> secrets;
  for (int i = 0; i < 32; ++i) {
    auto partner = X25519KeyPair::Generate(rng);
    secrets.insert(X25519(alice.secret_key, partner.public_key));
  }
  EXPECT_EQ(secrets.size(), 32u);
}

TEST(DeadDropProperty, UniformAcrossSpace) {
  // Dead-drop IDs from distinct sessions must spread uniformly — collisions
  // would create spurious pairs in m2. Bucket the first byte and chi-square.
  util::Xoshiro256Rng rng(3);
  auto alice = X25519KeyPair::Generate(rng);
  std::vector<int> buckets(16, 0);
  constexpr int kSamples = 4096;
  for (int i = 0; i < kSamples; ++i) {
    auto partner = X25519KeyPair::Generate(rng);
    auto session = conversation::Session::Derive(alice, partner.public_key);
    wire::DeadDropId id = conversation::DeadDropForRound(session.shared, 1);
    buckets[id[0] >> 4]++;
  }
  double expected = kSamples / 16.0;
  double chi2 = 0;
  for (int c : buckets) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 37.7);  // 15 dof, p=0.001
}

TEST(DeadDropProperty, RoundsDecorrelate) {
  // Consecutive rounds of the same session give unrelated IDs: equal prefix
  // bytes would let an adversary track a conversation across rounds (§4.1).
  util::Xoshiro256Rng rng(4);
  auto a = X25519KeyPair::Generate(rng);
  auto b = X25519KeyPair::Generate(rng);
  auto session = conversation::Session::Derive(a, b.public_key);
  std::set<wire::DeadDropId> ids;
  for (uint64_t round = 0; round < 256; ++round) {
    ids.insert(conversation::DeadDropForRound(session.shared, round));
  }
  EXPECT_EQ(ids.size(), 256u);
}

TEST(OnionProperty, LayerSizesTelescope) {
  util::Xoshiro256Rng rng(5);
  for (size_t chain_len : {1u, 2u, 3u, 4u, 5u, 6u}) {
    std::vector<X25519PublicKey> chain;
    std::vector<X25519KeyPair> keys;
    for (size_t i = 0; i < chain_len; ++i) {
      keys.push_back(X25519KeyPair::Generate(rng));
      chain.push_back(keys.back().public_key);
    }
    for (size_t payload_size : {1u, 64u, 272u, 1024u}) {
      util::Bytes payload = rng.RandomBytes(payload_size);
      WrappedOnion onion = OnionWrap(chain, 1, payload, rng);
      util::Bytes current = onion.data;
      for (size_t i = 0; i < chain_len; ++i) {
        EXPECT_EQ(current.size(),
                  OnionRequestSize(payload_size, chain_len - i));
        auto unwrapped = OnionUnwrapLayer(keys[i].secret_key, 1, current);
        ASSERT_TRUE(unwrapped.has_value());
        current = std::move(unwrapped->inner);
      }
      EXPECT_EQ(current, payload);
    }
  }
}

TEST(OnionProperty, LayerKeysPairwiseDistinct) {
  util::Xoshiro256Rng rng(6);
  std::vector<X25519PublicKey> chain;
  for (int i = 0; i < 4; ++i) {
    chain.push_back(X25519KeyPair::Generate(rng).public_key);
  }
  std::set<AeadKey> keys;
  for (int w = 0; w < 8; ++w) {
    WrappedOnion onion = OnionWrap(chain, 1, rng.RandomBytes(16), rng);
    for (const auto& key : onion.layer_keys) {
      keys.insert(key);
    }
  }
  EXPECT_EQ(keys.size(), 32u);  // 8 wraps × 4 layers, all fresh
}

TEST(DrbgProperty, StreamsDoNotOverlap) {
  // Distinct seeds yield streams with no shared 16-byte windows (sampled).
  ChaCha20Key s1{}, s2{};
  s2[31] = 1;
  ChaChaRng a(s1), b(s2);
  util::Bytes stream_a = a.RandomBytes(4096);
  util::Bytes stream_b = b.RandomBytes(4096);
  std::set<std::array<uint8_t, 16>> windows;
  for (size_t i = 0; i + 16 <= stream_a.size(); i += 16) {
    std::array<uint8_t, 16> w;
    std::copy_n(stream_a.begin() + static_cast<ptrdiff_t>(i), 16, w.begin());
    windows.insert(w);
  }
  for (size_t i = 0; i + 16 <= stream_b.size(); i += 16) {
    std::array<uint8_t, 16> w;
    std::copy_n(stream_b.begin() + static_cast<ptrdiff_t>(i), 16, w.begin());
    EXPECT_FALSE(windows.contains(w));
  }
}

TEST(DrbgProperty, ByteHistogramUniform) {
  ChaChaRng rng = ChaChaRng::FromSystem();
  std::vector<int> counts(256, 0);
  constexpr int kSamples = 1 << 16;
  util::Bytes data = rng.RandomBytes(kSamples);
  for (uint8_t byte : data) {
    counts[byte]++;
  }
  double expected = kSamples / 256.0;
  double chi2 = 0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 400.0);  // 255 dof, p≈0.001 is ~330; generous margin
}

TEST(SealedBoxProperty, CiphertextsLookRandomToNonRecipients) {
  // Noise invitations are raw random bytes; real invitations must be
  // indistinguishable from them by simple statistics: byte histogram of many
  // sealed boxes matches uniform.
  util::Xoshiro256Rng rng(7);
  auto recipient = X25519KeyPair::Generate(rng);
  auto caller = X25519KeyPair::Generate(rng);
  std::vector<int> counts(256, 0);
  constexpr int kBoxes = 1024;
  static constexpr uint8_t kCtx[] = "vuvuzela/invite/v1";
  for (int i = 0; i < kBoxes; ++i) {
    util::Bytes sealed = SealedBoxSeal(recipient.public_key,
                                       util::ByteSpan(kCtx, sizeof(kCtx) - 1),
                                       caller.public_key, rng);
    // Skip the ephemeral pk (a curve point, slightly structured top bit) and
    // histogram the ciphertext+tag portion.
    for (size_t j = kX25519KeySize; j < sealed.size(); ++j) {
      counts[sealed[j]]++;
    }
  }
  double total = kBoxes * 48.0;
  double expected = total / 256.0;
  double chi2 = 0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 400.0);
}

TEST(EnvelopeProperty, SameMessageDifferentRoundsUnlinkable) {
  // The same plaintext sent in different rounds yields unrelated envelopes.
  util::Xoshiro256Rng rng(8);
  auto a = X25519KeyPair::Generate(rng);
  auto b = X25519KeyPair::Generate(rng);
  auto session = conversation::Session::Derive(a, b.public_key);
  util::Bytes text = {'s', 'a', 'm', 'e'};
  auto r1 = conversation::BuildExchangeRequest(session, 1, text);
  auto r2 = conversation::BuildExchangeRequest(session, 2, text);
  EXPECT_NE(r1.envelope, r2.envelope);
  EXPECT_NE(r1.dead_drop, r2.dead_drop);
}

TEST(InvitationDropProperty, KeyToDropIsStableUnderDropCountChange) {
  // Changing m (the per-round drop count, §5.4) changes assignments, but for
  // fixed m the mapping is a pure function of the key.
  util::Xoshiro256Rng rng(9);
  auto pk = X25519KeyPair::Generate(rng).public_key;
  for (uint32_t m : {1u, 2u, 3u, 10u, 1000u}) {
    EXPECT_EQ(deaddrop::InvitationDropForKey(pk, m), deaddrop::InvitationDropForKey(pk, m));
    EXPECT_LT(deaddrop::InvitationDropForKey(pk, m), m);
  }
}

}  // namespace
}  // namespace vuvuzela::crypto
