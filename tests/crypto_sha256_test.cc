// SHA-256 against FIPS 180-4 / NIST CAVP vectors plus incremental-API
// properties.

#include <gtest/gtest.h>

#include <string>

#include "src/crypto/sha256.h"
#include "src/util/bytes.h"
#include "src/util/random.h"

namespace vuvuzela::crypto {
namespace {

using util::Bytes;
using util::ByteSpan;
using util::HexEncode;

std::string HashHex(const std::string& input) {
  auto digest = Sha256::Hash(ByteSpan(reinterpret_cast<const uint8_t*>(input.data()), input.size()));
  return HexEncode(digest);
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(HashHex(""), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(HashHex("abc"), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(HashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, FourBlockMessage) {
  EXPECT_EQ(HashHex("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
                    "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(ByteSpan(reinterpret_cast<const uint8_t*>(chunk.data()), chunk.size()));
  }
  EXPECT_EQ(HexEncode(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64-byte input exercises the padding path that appends a whole extra block.
  std::string input(64, 'x');
  Sha256 h;
  h.Update(ByteSpan(reinterpret_cast<const uint8_t*>(input.data()), input.size()));
  EXPECT_EQ(HexEncode(h.Finish()), HashHex(input));
}

TEST(Sha256, FinishTwiceThrows) {
  Sha256 h;
  h.Finish();
  EXPECT_THROW(h.Finish(), std::logic_error);
}

TEST(Sha256, UpdateAfterFinishThrows) {
  Sha256 h;
  h.Finish();
  uint8_t b = 0;
  EXPECT_THROW(h.Update(ByteSpan(&b, 1)), std::logic_error);
}

// Property: any chunking of the input produces the same digest.
class Sha256ChunkingTest : public ::testing::TestWithParam<size_t> {};

TEST_P(Sha256ChunkingTest, IncrementalMatchesOneShot) {
  size_t chunk_size = GetParam();
  util::Xoshiro256Rng rng(1234);
  Bytes data = rng.RandomBytes(1021);  // deliberately not a multiple of 64

  Sha256 h;
  for (size_t off = 0; off < data.size(); off += chunk_size) {
    size_t take = std::min(chunk_size, data.size() - off);
    h.Update(ByteSpan(data.data() + off, take));
  }
  EXPECT_EQ(h.Finish(), Sha256::Hash(data));
}

INSTANTIATE_TEST_SUITE_P(Chunkings, Sha256ChunkingTest,
                         ::testing::Values(1, 3, 7, 16, 63, 64, 65, 128, 500, 1021));

// Property: distinct lengths of the same repeated byte hash differently
// (regression guard on length padding).
TEST(Sha256, LengthAffectsDigest) {
  Bytes a(100, 0xaa), b(101, 0xaa);
  EXPECT_NE(Sha256::Hash(a), Sha256::Hash(b));
}

}  // namespace
}  // namespace vuvuzela::crypto
