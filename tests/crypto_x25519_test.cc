// X25519 against RFC 7748 §5.2 scalar-multiplication vectors (including the
// 1,000-iteration vector) and the §6.1 Diffie-Hellman vector.

#include <gtest/gtest.h>

#include <cstring>

#include "src/crypto/x25519.h"
#include "src/util/bytes.h"
#include "src/util/random.h"

namespace vuvuzela::crypto {
namespace {

using util::Bytes;
using util::HexDecode;
using util::HexEncode;

template <typename Array>
Array FromHex(const std::string& hex) {
  Bytes raw = HexDecode(hex);
  Array out;
  EXPECT_EQ(raw.size(), out.size());
  std::memcpy(out.data(), raw.data(), out.size());
  return out;
}

TEST(X25519, Rfc7748Vector1) {
  auto scalar = FromHex<X25519SecretKey>(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  auto point = FromHex<X25519PublicKey>(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(HexEncode(X25519(scalar, point)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748Vector2) {
  auto scalar = FromHex<X25519SecretKey>(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  auto point = FromHex<X25519PublicKey>(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  EXPECT_EQ(HexEncode(X25519(scalar, point)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519, Rfc7748IteratedOnce) {
  X25519SecretKey k{};
  k[0] = 9;
  X25519PublicKey u{};
  u[0] = 9;
  auto result = X25519(k, u);
  EXPECT_EQ(HexEncode(result),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079");
}

TEST(X25519, Rfc7748Iterated1000) {
  X25519SecretKey k{};
  k[0] = 9;
  X25519PublicKey u{};
  u[0] = 9;
  for (int i = 0; i < 1000; ++i) {
    auto result = X25519(k, u);
    std::memcpy(u.data(), k.data(), 32);
    std::memcpy(k.data(), result.data(), 32);
  }
  EXPECT_EQ(HexEncode(k), "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51");
}

TEST(X25519, Rfc7748DiffieHellman) {
  auto alice_sk = FromHex<X25519SecretKey>(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  auto bob_sk = FromHex<X25519SecretKey>(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");

  X25519PublicKey alice_pk = X25519BasePoint(alice_sk);
  X25519PublicKey bob_pk = X25519BasePoint(bob_sk);
  EXPECT_EQ(HexEncode(alice_pk),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(HexEncode(bob_pk),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  auto shared_ab = X25519(alice_sk, bob_pk);
  auto shared_ba = X25519(bob_sk, alice_pk);
  EXPECT_EQ(shared_ab, shared_ba);
  EXPECT_EQ(HexEncode(shared_ab),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, GeneratedKeyPairsAgree) {
  util::Xoshiro256Rng rng(2024);
  for (int i = 0; i < 8; ++i) {
    auto a = X25519KeyPair::Generate(rng);
    auto b = X25519KeyPair::Generate(rng);
    EXPECT_EQ(X25519(a.secret_key, b.public_key), X25519(b.secret_key, a.public_key));
  }
}

TEST(X25519, DistinctSecretsDistinctPublics) {
  util::Xoshiro256Rng rng(55);
  auto a = X25519KeyPair::Generate(rng);
  auto b = X25519KeyPair::Generate(rng);
  EXPECT_NE(a.public_key, b.public_key);
}

TEST(X25519, ClampingIgnoresScalarNoiseBits) {
  // The three low bits and the top bit of the scalar are clamped, so flipping
  // them must not change the result.
  util::Xoshiro256Rng rng(66);
  auto kp = X25519KeyPair::Generate(rng);
  X25519SecretKey noisy = kp.secret_key;
  noisy[0] ^= 0x07;
  noisy[31] ^= 0x80;
  EXPECT_EQ(X25519BasePoint(noisy), kp.public_key);
}

TEST(X25519, HighBitOfPointIsMasked) {
  // RFC 7748: implementations MUST mask the most significant bit of u.
  util::Xoshiro256Rng rng(67);
  auto kp = X25519KeyPair::Generate(rng);
  X25519PublicKey point = kp.public_key;
  X25519PublicKey masked = point;
  masked[31] |= 0x80;
  X25519SecretKey s;
  rng.Fill(s);
  EXPECT_EQ(X25519(s, point), X25519(s, masked));
}

}  // namespace
}  // namespace vuvuzela::crypto
