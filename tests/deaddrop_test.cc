// Dead-drop table tests: exchange semantics (Algorithm 2 step 3b), the
// m1/m2 histogram, and the invitation table.

#include <gtest/gtest.h>

#include "src/deaddrop/conversation_table.h"
#include "src/deaddrop/invitation_table.h"
#include "src/util/random.h"

namespace vuvuzela::deaddrop {
namespace {

wire::ExchangeRequest MakeRequest(uint8_t drop_tag, uint8_t envelope_tag) {
  wire::ExchangeRequest req;
  req.dead_drop.fill(drop_tag);
  req.envelope.fill(envelope_tag);
  return req;
}

TEST(ExchangeRound, PairSwapsEnvelopes) {
  std::vector<wire::ExchangeRequest> requests = {MakeRequest(1, 0xaa), MakeRequest(1, 0xbb)};
  ExchangeOutcome out = ExchangeRound(requests);
  EXPECT_EQ(out.results[0], requests[1].envelope);
  EXPECT_EQ(out.results[1], requests[0].envelope);
  EXPECT_EQ(out.histogram.pairs, 1u);
  EXPECT_EQ(out.histogram.singles, 0u);
  EXPECT_EQ(out.messages_exchanged, 2u);
}

TEST(ExchangeRound, SingleEchoesBack) {
  std::vector<wire::ExchangeRequest> requests = {MakeRequest(7, 0xcc)};
  ExchangeOutcome out = ExchangeRound(requests);
  EXPECT_EQ(out.results[0], requests[0].envelope);
  EXPECT_EQ(out.histogram.singles, 1u);
  EXPECT_EQ(out.messages_exchanged, 0u);
}

TEST(ExchangeRound, MixedDrops) {
  std::vector<wire::ExchangeRequest> requests = {
      MakeRequest(1, 0x01), MakeRequest(2, 0x02), MakeRequest(1, 0x03),
      MakeRequest(3, 0x04), MakeRequest(3, 0x05),
  };
  ExchangeOutcome out = ExchangeRound(requests);
  EXPECT_EQ(out.results[0], requests[2].envelope);
  EXPECT_EQ(out.results[2], requests[0].envelope);
  EXPECT_EQ(out.results[1], requests[1].envelope);  // lone → echo
  EXPECT_EQ(out.results[3], requests[4].envelope);
  EXPECT_EQ(out.results[4], requests[3].envelope);
  EXPECT_EQ(out.histogram.pairs, 2u);
  EXPECT_EQ(out.histogram.singles, 1u);
  EXPECT_EQ(out.messages_exchanged, 4u);
}

TEST(ExchangeRound, CrowdedDropPairsInOrderOddEchoes) {
  // Only adversarial clients share a drop 3+ ways; behavior must stay sane.
  std::vector<wire::ExchangeRequest> requests = {MakeRequest(9, 0x01), MakeRequest(9, 0x02),
                                                 MakeRequest(9, 0x03)};
  ExchangeOutcome out = ExchangeRound(requests);
  EXPECT_EQ(out.results[0], requests[1].envelope);
  EXPECT_EQ(out.results[1], requests[0].envelope);
  EXPECT_EQ(out.results[2], requests[2].envelope);  // odd one out echoes
  EXPECT_EQ(out.histogram.crowded, 1u);
  EXPECT_EQ(out.messages_exchanged, 2u);
}

TEST(ExchangeRound, EmptyRound) {
  ExchangeOutcome out = ExchangeRound({});
  EXPECT_TRUE(out.results.empty());
  EXPECT_EQ(out.histogram.singles + out.histogram.pairs + out.histogram.crowded, 0u);
}

TEST(ExchangeRound, LargeRoundHistogramAddsUp) {
  util::Xoshiro256Rng rng(5);
  std::vector<wire::ExchangeRequest> requests;
  // 100 paired drops + 50 singles.
  for (int i = 0; i < 100; ++i) {
    wire::ExchangeRequest a, b;
    rng.Fill(a.dead_drop);
    b.dead_drop = a.dead_drop;
    rng.Fill(a.envelope);
    rng.Fill(b.envelope);
    requests.push_back(a);
    requests.push_back(b);
  }
  for (int i = 0; i < 50; ++i) {
    wire::ExchangeRequest a;
    rng.Fill(a.dead_drop);
    rng.Fill(a.envelope);
    requests.push_back(a);
  }
  ExchangeOutcome out = ExchangeRound(requests);
  EXPECT_EQ(out.histogram.pairs, 100u);
  EXPECT_EQ(out.histogram.singles, 50u);
  EXPECT_EQ(out.messages_exchanged, 200u);
}

// Builds a mixed workload of paired, single, and crowded drops with
// pseudorandom (hash-like) IDs, as the last server sees in production.
std::vector<wire::ExchangeRequest> RandomWorkload(uint64_t seed, size_t pairs, size_t singles,
                                                  size_t crowded) {
  util::Xoshiro256Rng rng(seed);
  std::vector<wire::ExchangeRequest> requests;
  for (size_t i = 0; i < pairs; ++i) {
    wire::ExchangeRequest a, b;
    rng.Fill(a.dead_drop);
    b.dead_drop = a.dead_drop;
    rng.Fill(a.envelope);
    rng.Fill(b.envelope);
    requests.push_back(a);
    requests.push_back(b);
  }
  for (size_t i = 0; i < singles; ++i) {
    wire::ExchangeRequest a;
    rng.Fill(a.dead_drop);
    rng.Fill(a.envelope);
    requests.push_back(a);
  }
  for (size_t i = 0; i < crowded; ++i) {
    wire::ExchangeRequest a;
    rng.Fill(a.dead_drop);
    for (int k = 0; k < 3; ++k) {
      rng.Fill(a.envelope);
      requests.push_back(a);
    }
  }
  // Interleave so shard buckets see non-contiguous accesses.
  std::vector<uint32_t> perm(requests.size());
  for (uint32_t i = 0; i < perm.size(); ++i) {
    perm[i] = i;
  }
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.UniformUint64(i)]);
  }
  std::vector<wire::ExchangeRequest> shuffled(requests.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    shuffled[i] = requests[perm[i]];
  }
  return shuffled;
}

void ExpectSameOutcome(const ExchangeOutcome& a, const ExchangeOutcome& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i], b.results[i]) << "result " << i << " diverges";
  }
  EXPECT_EQ(a.histogram.singles, b.histogram.singles);
  EXPECT_EQ(a.histogram.pairs, b.histogram.pairs);
  EXPECT_EQ(a.histogram.crowded, b.histogram.crowded);
  EXPECT_EQ(a.messages_exchanged, b.messages_exchanged);
}

TEST(ShardedExchangeRound, ByteIdenticalToSequential) {
  std::vector<wire::ExchangeRequest> requests = RandomWorkload(11, 400, 150, 20);
  ExchangeOutcome sequential = ExchangeRound(requests);
  for (size_t shards : {2u, 3u, 8u, 64u}) {
    ExchangeOutcome sharded = ShardedExchangeRound(requests, shards);
    ExpectSameOutcome(sequential, sharded);
  }
}

TEST(ShardedExchangeRound, MoreShardsThanRequestsFallsBack) {
  std::vector<wire::ExchangeRequest> requests = RandomWorkload(12, 3, 2, 0);
  ExpectSameOutcome(ExchangeRound(requests), ShardedExchangeRound(requests, 64));
}

TEST(ShardedExchangeRound, EmptyRound) {
  ExchangeOutcome out = ShardedExchangeRound({}, 8);
  EXPECT_TRUE(out.results.empty());
  EXPECT_EQ(out.messages_exchanged, 0u);
}

TEST(ShardedExchangeRound, AdversarialSameIdLoad) {
  // Every request hits the same drop: one shard takes the whole load; the
  // outcome must still match the sequential pairing-in-input-order rule.
  std::vector<wire::ExchangeRequest> requests;
  for (int i = 0; i < 101; ++i) {
    requests.push_back(MakeRequest(42, static_cast<uint8_t>(i)));
  }
  ExpectSameOutcome(ExchangeRound(requests), ShardedExchangeRound(requests, 16));
}

TEST(InvitationDropForKey, StableAndInRange) {
  util::Xoshiro256Rng rng(6);
  crypto::X25519PublicKey pk;
  rng.Fill(pk);
  uint32_t d1 = InvitationDropForKey(pk, 10);
  uint32_t d2 = InvitationDropForKey(pk, 10);
  EXPECT_EQ(d1, d2);
  EXPECT_LT(d1, 10u);
  EXPECT_THROW(InvitationDropForKey(pk, 0), std::invalid_argument);
}

TEST(InvitationDropForKey, SpreadsAcrossDrops) {
  util::Xoshiro256Rng rng(7);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 800; ++i) {
    crypto::X25519PublicKey pk;
    rng.Fill(pk);
    hits[InvitationDropForKey(pk, 8)]++;
  }
  for (int h : hits) {
    EXPECT_GT(h, 50);  // expect ≈100 each; catastrophic skew would fail
  }
}

TEST(InvitationTable, AddAndFetch) {
  InvitationTable table(3);
  wire::Invitation inv;
  inv.fill(0x11);
  table.Add(1, inv);
  EXPECT_EQ(table.Drop(1).size(), 1u);
  EXPECT_EQ(table.Drop(0).size(), 0u);
  EXPECT_EQ(table.Drop(1)[0], inv);
}

TEST(InvitationTable, OutOfRangeIndexWraps) {
  InvitationTable table(3);
  wire::Invitation inv;
  inv.fill(0x22);
  table.Add(4, inv);  // adversarial index: 4 mod 3 = 1
  EXPECT_EQ(table.Drop(1).size(), 1u);
}

TEST(InvitationTable, NoiseCountsApplied) {
  InvitationTable table(4);
  util::Xoshiro256Rng rng(8);
  std::vector<uint64_t> counts = {5, 0, 2, 7};
  table.AddNoise(counts, rng);
  EXPECT_EQ(table.DropSizes(), (std::vector<uint64_t>{5, 0, 2, 7}));
}

TEST(InvitationTable, NoiseSizeMismatchThrows) {
  InvitationTable table(4);
  util::Xoshiro256Rng rng(9);
  std::vector<uint64_t> counts = {1, 2};
  EXPECT_THROW(table.AddNoise(counts, rng), std::invalid_argument);
}

TEST(InvitationTable, DropBytesCountsInvitationSize) {
  InvitationTable table(2);
  util::Xoshiro256Rng rng(10);
  std::vector<uint64_t> counts = {3, 0};
  table.AddNoise(counts, rng);
  EXPECT_EQ(table.DropBytes(0), 3 * wire::kInvitationSize);
  EXPECT_EQ(table.DropBytes(1), 0u);
}

TEST(InvitationTable, ZeroDropsThrows) { EXPECT_THROW(InvitationTable(0), std::invalid_argument); }

}  // namespace
}  // namespace vuvuzela::deaddrop
