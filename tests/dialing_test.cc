// Dialing protocol unit tests (§5 client logic).

#include <gtest/gtest.h>

#include "src/dialing/protocol.h"
#include "src/util/random.h"

namespace vuvuzela::dialing {
namespace {

class DialingTest : public ::testing::Test {
 protected:
  util::Xoshiro256Rng rng_{88};
  crypto::X25519KeyPair alice_ = crypto::X25519KeyPair::Generate(rng_);
  crypto::X25519KeyPair bob_ = crypto::X25519KeyPair::Generate(rng_);
  crypto::X25519KeyPair eve_ = crypto::X25519KeyPair::Generate(rng_);
  RoundConfig config_{.num_real_drops = 8};
};

TEST_F(DialingTest, InvitationRoundTrip) {
  wire::Invitation inv = SealInvitation(alice_.public_key, bob_.public_key, rng_);
  auto callers = ScanInvitations(bob_, std::span(&inv, 1));
  ASSERT_EQ(callers.size(), 1u);
  EXPECT_EQ(callers[0], alice_.public_key);
}

TEST_F(DialingTest, WrongRecipientCannotRead) {
  wire::Invitation inv = SealInvitation(alice_.public_key, bob_.public_key, rng_);
  EXPECT_TRUE(ScanInvitations(eve_, std::span(&inv, 1)).empty());
}

TEST_F(DialingTest, NoiseInvitationsAreSkipped) {
  std::vector<wire::Invitation> drop;
  for (int i = 0; i < 20; ++i) {
    wire::Invitation fake;
    rng_.Fill(fake);
    drop.push_back(fake);
  }
  drop.push_back(SealInvitation(alice_.public_key, bob_.public_key, rng_));
  for (int i = 0; i < 20; ++i) {
    wire::Invitation fake;
    rng_.Fill(fake);
    drop.push_back(fake);
  }
  auto callers = ScanInvitations(bob_, drop);
  ASSERT_EQ(callers.size(), 1u);
  EXPECT_EQ(callers[0], alice_.public_key);
}

TEST_F(DialingTest, MultipleCallersAllFound) {
  std::vector<wire::Invitation> drop;
  drop.push_back(SealInvitation(alice_.public_key, bob_.public_key, rng_));
  drop.push_back(SealInvitation(eve_.public_key, bob_.public_key, rng_));
  auto callers = ScanInvitations(bob_, drop);
  ASSERT_EQ(callers.size(), 2u);
  EXPECT_EQ(callers[0], alice_.public_key);
  EXPECT_EQ(callers[1], eve_.public_key);
}

TEST_F(DialingTest, DialRequestTargetsRecipientsDrop) {
  wire::DialRequest req = BuildDialRequest(config_, alice_.public_key, bob_.public_key, rng_);
  EXPECT_EQ(req.dead_drop_index, DropForRecipient(config_, bob_.public_key));
  EXPECT_LT(req.dead_drop_index, config_.num_real_drops);
}

TEST_F(DialingTest, IdleRequestUsesNoopDrop) {
  wire::DialRequest req = BuildIdleDialRequest(config_, rng_);
  EXPECT_EQ(req.dead_drop_index, config_.noop_index());
  EXPECT_EQ(req.dead_drop_index, config_.num_real_drops);
  // The random invitation decrypts for nobody.
  EXPECT_TRUE(ScanInvitations(bob_, std::span(&req.invitation, 1)).empty());
}

TEST_F(DialingTest, RealAndIdleRequestsSameSize) {
  wire::DialRequest real = BuildDialRequest(config_, alice_.public_key, bob_.public_key, rng_);
  wire::DialRequest idle = BuildIdleDialRequest(config_, rng_);
  EXPECT_EQ(real.Serialize().size(), idle.Serialize().size());
}

TEST(OptimalDropCount, PaperFormula) {
  // §5.4: m = n·f/µ. 1M users, 5% dialing, µ=13000 → m = 50000/13000 ≈ 3.
  EXPECT_EQ(OptimalDropCount(1000000, 0.05, 13000), 3u);
  // §7: at small experimental scale the optimal number of drops is one.
  EXPECT_EQ(OptimalDropCount(1000, 0.05, 13000), 1u);
  EXPECT_EQ(OptimalDropCount(0, 0.05, 13000), 1u);  // floor at 1
}

TEST(OptimalDropCount, Validation) {
  EXPECT_THROW(OptimalDropCount(1000, 0.05, 0.0), std::invalid_argument);
  EXPECT_THROW(OptimalDropCount(1000, 1.5, 100.0), std::invalid_argument);
}

TEST(RoundConfig, DropLayout) {
  RoundConfig config{.num_real_drops = 5};
  EXPECT_EQ(config.noop_index(), 5u);
  EXPECT_EQ(config.total_drops(), 6u);
}

}  // namespace
}  // namespace vuvuzela::dialing
