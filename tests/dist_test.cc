// Invitation-distribution subsystem tests (§5.5): conformance between the
// in-process InvitationDistributor and the sharded DistRouter →
// vuvuzela-distd path (byte-identical buckets for shard counts {1,2,4}),
// wire-header robustness, the engine's Distribute stage, the client-side
// DialingFetcher end to end, failure injection (a dead dist shard costs only
// the dialing rounds routed to it and rejoins after restart), and concurrent
// bucket downloads against one shard fleet.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "src/client/dialing_fetcher.h"
#include "src/transport/coord_daemon.h"
#include "src/coord/coordinator.h"
#include "src/coord/distributor.h"
#include "src/engine/round_lifecycle.h"
#include "src/engine/round_scheduler.h"
#include "src/mixnet/chain.h"
#include "src/sim/deployment.h"
#include "src/sim/workload.h"
#include "src/transport/dist_router.h"
#include "src/transport/hop_chain.h"
#include "src/util/random.h"

namespace vuvuzela::transport {
namespace {

// A table with structured per-bucket contents: counts[i] invitations in
// bucket i, each unique (derived from round/bucket/slot), so a byte-level
// comparison catches misrouted, reordered, or truncated buckets.
deaddrop::InvitationTable MakeTable(uint32_t num_drops, const std::vector<uint64_t>& counts,
                                    uint64_t seed) {
  deaddrop::InvitationTable table(num_drops);
  util::Xoshiro256Rng rng(seed);
  for (uint32_t drop = 0; drop < num_drops; ++drop) {
    for (uint64_t j = 0; j < counts[drop]; ++j) {
      wire::Invitation invitation;
      rng.Fill(invitation);
      table.Add(drop, invitation);
    }
  }
  return table;
}

deaddrop::InvitationTable CopyTable(const deaddrop::InvitationTable& table) {
  deaddrop::InvitationTable copy(table.num_drops());
  for (uint32_t drop = 0; drop < table.num_drops(); ++drop) {
    for (const auto& invitation : table.Drop(drop)) {
      copy.Add(drop, invitation);
    }
  }
  return copy;
}

TEST(DistConformance, RouterByteIdenticalToInProcessForShardCounts124) {
  const uint32_t kNumDrops = 7;
  for (size_t num_shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    auto group = DistGroup::Start(num_shards);
    ASSERT_NE(group, nullptr);
    auto router = DistRouter::Connect(group->RouterConfig());
    ASSERT_NE(router, nullptr);
    coord::InvitationDistributor local;

    // Two rounds with distinct shapes, including an empty bucket (size zero
    // is an observable variable and must round-trip).
    const std::vector<std::vector<uint64_t>> shapes = {{3, 0, 5, 1, 2, 7, 4},
                                                       {1, 2, 3, 4, 5, 6, 0}};
    for (size_t r = 0; r < shapes.size(); ++r) {
      uint64_t round = coord::kDialingRoundBase + r;
      deaddrop::InvitationTable table = MakeTable(kNumDrops, shapes[r], 1000 + r);
      local.Publish(round, CopyTable(table));
      router->Publish(round, std::move(table));
      EXPECT_TRUE(local.HasRound(round));
      EXPECT_TRUE(router->HasRound(round));
    }

    for (size_t r = 0; r < shapes.size(); ++r) {
      uint64_t round = coord::kDialingRoundBase + r;
      for (uint32_t drop = 0; drop < kNumDrops; ++drop) {
        std::vector<wire::Invitation> expect = local.Fetch(round, drop);
        std::vector<wire::Invitation> got = router->Fetch(round, drop);
        ASSERT_EQ(got.size(), expect.size()) << "round " << r << " bucket " << drop;
        EXPECT_EQ(got, expect) << "round " << r << " bucket " << drop;
      }
    }
    // Identical downloads cost identical bytes on both backends.
    EXPECT_EQ(router->bytes_served(), local.bytes_served());
    EXPECT_EQ(router->downloads_served(), local.downloads_served());

    // Unknown rounds fail identically.
    EXPECT_THROW(local.Fetch(42, 0), std::out_of_range);
    EXPECT_THROW(router->Fetch(42, 0), std::out_of_range);
    EXPECT_FALSE(router->HasRound(42));

    router->SendShutdown();
  }
}

TEST(DistConformance, PublishOverExistingRoundReplacesOnBothBackends) {
  auto group = DistGroup::Start(2);
  ASSERT_NE(group, nullptr);
  auto router = DistRouter::Connect(group->RouterConfig());
  ASSERT_NE(router, nullptr);
  coord::InvitationDistributor local;

  const uint64_t round = coord::kDialingRoundBase;
  deaddrop::InvitationTable first = MakeTable(4, {2, 2, 2, 2}, 7);
  deaddrop::InvitationTable second = MakeTable(4, {1, 3, 0, 5}, 8);
  local.Publish(round, CopyTable(first));
  router->Publish(round, std::move(first));
  local.Publish(round, CopyTable(second));
  router->Publish(round, CopyTable(second));

  for (uint32_t drop = 0; drop < 4; ++drop) {
    EXPECT_EQ(local.Fetch(round, drop), second.Drop(drop));
    EXPECT_EQ(router->Fetch(round, drop), second.Drop(drop));
  }
}

TEST(DistConformance, ExpiryDropsOldRoundsOnRouterAndShards) {
  auto group = DistGroup::Start(2);
  ASSERT_NE(group, nullptr);
  DistRouterConfig config = group->RouterConfig();
  config.keep_rounds = 2;  // shards hold at most 2 publications
  auto router = DistRouter::Connect(config);
  ASSERT_NE(router, nullptr);

  for (uint64_t r = 0; r < 4; ++r) {
    router->Publish(coord::kDialingRoundBase + r, MakeTable(4, {1, 1, 1, 1}, r));
    router->Expire(2);  // what the engine's Distribute stage drives
  }
  // Router-side map: only the newest two rounds route.
  EXPECT_FALSE(router->HasRound(coord::kDialingRoundBase + 1));
  EXPECT_THROW(router->Fetch(coord::kDialingRoundBase + 1, 0), std::out_of_range);
  EXPECT_TRUE(router->HasRound(coord::kDialingRoundBase + 3));
  EXPECT_EQ(router->Fetch(coord::kDialingRoundBase + 3, 0).size(), 1u);

  // Shard-side: a direct fetch (no router map in the way) confirms the
  // publish-piggybacked horizon evicted the old slice.
  client::DialingFetcher fetcher(group->FetcherConfig());
  EXPECT_THROW(fetcher.FetchBucket(coord::kDialingRoundBase + 1, 0, 4), HopRemoteError);
  EXPECT_EQ(fetcher.FetchBucket(coord::kDialingRoundBase + 2, 0, 4).size(), 1u);
}

// The epoll-reactor serve path (config.reactor = true — the default, so every
// DistGroup test above already runs against it) must be observationally
// identical to the thread-per-connection path it replaced. Both answer through
// the same HandleRequest core and the same chunk builder, so identity should
// hold by construction; this test checks it empirically at the wire level:
// multi-chunk bucket fetches and every error-reply class compare byte for
// byte between a reactor daemon and a --threaded daemon holding the same
// published table.
TEST(DistConformance, ReactorByteIdenticalToThreadedServePath) {
  const uint32_t kNumDrops = 6;
  const uint64_t kRound = coord::kDialingRoundBase;
  // A small chunk budget forces multi-chunk replies through both encoders.
  const size_t kChunk = 256;

  struct ServePath {
    std::unique_ptr<DistDaemon> daemon;
    std::thread serve;
  };
  auto start = [&](bool reactor) {
    DistDaemonConfig config;
    config.reactor = reactor;
    config.chunk_payload = kChunk;
    ServePath path;
    path.daemon = DistDaemon::Create(config);
    if (path.daemon != nullptr) {
      path.serve = std::thread([daemon = path.daemon.get()] { daemon->Serve(); });
    }
    return path;
  };
  ServePath reactor = start(/*reactor=*/true);
  ServePath threaded = start(/*reactor=*/false);
  ASSERT_NE(reactor.daemon, nullptr);
  ASSERT_NE(threaded.daemon, nullptr);

  // Publish the same table to both through the router's wire path.
  deaddrop::InvitationTable table = MakeTable(kNumDrops, {3, 0, 5, 1, 2, 7}, 99);
  for (DistDaemon* daemon : {reactor.daemon.get(), threaded.daemon.get()}) {
    DistRouterConfig config;
    config.shards.push_back({"127.0.0.1", daemon->port()});
    config.chunk_payload = kChunk;
    auto router = DistRouter::Connect(config);
    ASSERT_NE(router, nullptr);
    router->Publish(kRound, CopyTable(table));
  }
  ASSERT_EQ(reactor.daemon->rounds_held(), 1u);
  ASSERT_EQ(threaded.daemon->rounds_held(), 1u);

  auto connect = [](uint16_t port) {
    auto conn = net::TcpConnection::Connect("127.0.0.1", port);
    EXPECT_TRUE(conn.has_value());
    if (conn) {
      conn->SetRecvTimeout(10000);
    }
    return conn;
  };
  auto reactor_conn = connect(reactor.daemon->port());
  auto threaded_conn = connect(threaded.daemon->port());
  ASSERT_TRUE(reactor_conn.has_value() && threaded_conn.has_value());

  // Every bucket — including the empty one — fetched over both paths, on one
  // persistent connection each (the fetcher's access pattern). The same
  // `peer_label` makes thrown error strings comparable below.
  for (uint32_t drop = 0; drop < kNumDrops; ++drop) {
    util::Bytes header =
        EncodeInvitationFetchHeader({/*shard_index=*/0, /*num_shards=*/1, kNumDrops, drop});
    BatchMessage from_reactor =
        CallBatchRpc(*reactor_conn, "shard", net::FrameType::kInvitationFetch, kRound, header, {},
                     kChunk);
    BatchMessage from_threaded =
        CallBatchRpc(*threaded_conn, "shard", net::FrameType::kInvitationFetch, kRound, header, {},
                     kChunk);
    EXPECT_EQ(from_reactor.op, from_threaded.op) << "bucket " << drop;
    EXPECT_EQ(from_reactor.round, from_threaded.round) << "bucket " << drop;
    EXPECT_EQ(from_reactor.header, from_threaded.header) << "bucket " << drop;
    EXPECT_EQ(from_reactor.items, from_threaded.items) << "bucket " << drop;
    EXPECT_EQ(from_reactor.items.size(), table.Drop(drop).size()) << "bucket " << drop;
  }
  EXPECT_EQ(reactor.daemon->fetches_served(), threaded.daemon->fetches_served());
  EXPECT_EQ(reactor.daemon->bytes_served(), threaded.daemon->bytes_served());

  // Error replies carry the same report on both paths: unknown round, a
  // partition-shape mismatch, and a non-dist op as the opening frame.
  auto remote_error = [&](net::TcpConnection& conn, net::FrameType op, uint64_t round,
                          util::ByteSpan header) -> std::string {
    try {
      CallBatchRpc(conn, "shard", op, round, header, {}, kChunk);
    } catch (const HopRemoteError& e) {
      return e.what();
    }
    return "(no error)";
  };
  util::Bytes fetch0 = EncodeInvitationFetchHeader({0, 1, kNumDrops, 0});
  std::string unknown_reactor =
      remote_error(*reactor_conn, net::FrameType::kInvitationFetch, kRound + 7, fetch0);
  EXPECT_EQ(unknown_reactor,
            remote_error(*threaded_conn, net::FrameType::kInvitationFetch, kRound + 7, fetch0));
  EXPECT_NE(unknown_reactor.find(kDistUnknownRoundError), std::string::npos);

  util::Bytes mismatched = EncodeInvitationFetchHeader({1, 2, kNumDrops, kNumDrops - 1});
  EXPECT_EQ(remote_error(*reactor_conn, net::FrameType::kInvitationFetch, kRound, mismatched),
            remote_error(*threaded_conn, net::FrameType::kInvitationFetch, kRound, mismatched));

  EXPECT_EQ(remote_error(*reactor_conn, net::FrameType::kDialAck, kRound, {}),
            remote_error(*threaded_conn, net::FrameType::kDialAck, kRound, {}));

  for (ServePath* path : {&reactor, &threaded}) {
    path->daemon->Stop();
    path->serve.join();
  }
}

TEST(DistWire, HeaderCodecsRejectMalformedInput) {
  InvitationPublishHeader publish{1, 2, 8, 4};
  util::Bytes publish_bytes = EncodeInvitationPublishHeader(publish);
  auto publish_parsed = ParseInvitationPublishHeader(publish_bytes);
  ASSERT_TRUE(publish_parsed.has_value());
  EXPECT_EQ(publish_parsed->shard_index, 1u);
  EXPECT_EQ(publish_parsed->keep_latest, 4u);

  util::Bytes truncated(publish_bytes.begin(), publish_bytes.end() - 1);
  EXPECT_FALSE(ParseInvitationPublishHeader(truncated).has_value());
  util::Bytes trailing = publish_bytes;
  trailing.push_back(0);
  EXPECT_FALSE(ParseInvitationPublishHeader(trailing).has_value());
  EXPECT_FALSE(ParseInvitationPublishHeader(
                   EncodeInvitationPublishHeader({2, 2, 8, 4}))  // shard out of range
                   .has_value());
  EXPECT_FALSE(ParseInvitationPublishHeader(
                   EncodeInvitationPublishHeader({0, 0, 8, 4}))  // zero shards
                   .has_value());
  EXPECT_FALSE(ParseInvitationPublishHeader(
                   EncodeInvitationPublishHeader({0, 1, 0, 4}))  // zero drops
                   .has_value());
  EXPECT_FALSE(ParseInvitationPublishHeader(
                   EncodeInvitationPublishHeader({0, 1, 8, 0}))  // keep_latest zero
                   .has_value());

  InvitationFetchHeader fetch{0, 2, 8, 5};
  util::Bytes fetch_bytes = EncodeInvitationFetchHeader(fetch);
  auto fetch_parsed = ParseInvitationFetchHeader(fetch_bytes);
  ASSERT_TRUE(fetch_parsed.has_value());
  EXPECT_EQ(fetch_parsed->drop_index, 5u);
  EXPECT_FALSE(ParseInvitationFetchHeader(
                   EncodeInvitationFetchHeader({0, 2, 8, 8}))  // bucket out of range
                   .has_value());
  EXPECT_FALSE(
      ParseInvitationFetchHeader(util::Bytes(fetch_bytes.begin(), fetch_bytes.end() - 2))
          .has_value());
}

// --- Engine Distribute stage -------------------------------------------------

mixnet::Chain MakeChain(util::Rng& rng, size_t servers = 3) {
  mixnet::ChainConfig config;
  config.num_servers = servers;
  config.conversation_noise = {.params = {3.0, 1.0}, .deterministic = true};
  config.dialing_noise = {.params = {2.0, 1.0}, .deterministic = true};
  config.parallel = false;
  return mixnet::Chain::Create(config, rng);
}

std::vector<util::Bytes> DialBatch(const mixnet::Chain& chain, uint64_t round, uint64_t users,
                                   uint64_t seed) {
  sim::WorkloadConfig workload{
      .num_users = users, .pairing_fraction = 1.0, .seed = seed, .parallel = false};
  dialing::RoundConfig dial_config{.num_real_drops = 3};
  return sim::GenerateDialingWorkload(workload, chain.public_keys(), round, dial_config, 0.5);
}

std::vector<util::Bytes> ConversationBatch(const mixnet::Chain& chain, uint64_t round,
                                           uint64_t users, uint64_t seed) {
  sim::WorkloadConfig workload{
      .num_users = users, .pairing_fraction = 1.0, .seed = seed, .parallel = false};
  return sim::GenerateConversationWorkload(workload, chain.public_keys(), round);
}

TEST(EngineDistribute, DistributeStagePublishesTableAndCompletesRound) {
  util::Xoshiro256Rng rng(31);
  mixnet::Chain chain = MakeChain(rng);
  coord::InvitationDistributor distributor;
  engine::RoundLifecycle lifecycle;
  std::vector<engine::RoundPhase> phases;
  std::mutex phases_mutex;
  engine::RoundLifecycle observed([&](const engine::RoundStatus& status) {
    std::lock_guard<std::mutex> lock(phases_mutex);
    phases.push_back(status.phase);
  });

  engine::SchedulerConfig config;
  config.max_in_flight = 2;
  config.distribution = &distributor;
  config.distribution_keep = 2;
  config.lifecycle = &observed;
  engine::RoundScheduler scheduler(chain, config);

  uint64_t round = coord::kDialingRoundBase;
  auto future = scheduler.SubmitDialing(round, DialBatch(chain, round, 8, 5), /*num_drops=*/4);
  mixnet::Chain::DialingResult result = future.get();

  // The invitations moved into the backend; the result keeps the bucket
  // count only.
  EXPECT_EQ(result.table.num_drops(), 4u);
  for (uint32_t drop = 0; drop < 4; ++drop) {
    EXPECT_TRUE(result.table.Drop(drop).empty());
  }
  ASSERT_TRUE(distributor.HasRound(round));
  uint64_t published = 0;
  for (uint32_t drop = 0; drop < 4; ++drop) {
    published += distributor.Fetch(round, drop).size();
  }
  EXPECT_GT(published, 0u);  // noise alone guarantees deposits
  EXPECT_EQ(scheduler.stats().invitation_tables_distributed, 1u);

  // The round crossed the Distributing phase on its way to Complete.
  std::lock_guard<std::mutex> lock(phases_mutex);
  EXPECT_NE(std::find(phases.begin(), phases.end(), engine::RoundPhase::kDistributing),
            phases.end());
  EXPECT_EQ(phases.back(), engine::RoundPhase::kComplete);
}

TEST(EngineDistribute, PublishedTableByteIdenticalToUndistributedRun) {
  // Two chains from the same seed run the same dialing round; one engine
  // returns the table in the result (no backend), the other publishes it
  // through the Distribute stage. Bucket-for-bucket the bytes must match —
  // distribution must not perturb the round.
  util::Xoshiro256Rng rng_a(77);
  mixnet::Chain chain_a = MakeChain(rng_a);
  util::Xoshiro256Rng rng_b(77);
  mixnet::Chain chain_b = MakeChain(rng_b);

  uint64_t round = coord::kDialingRoundBase + 3;
  std::vector<util::Bytes> batch = DialBatch(chain_a, round, 10, 9);

  engine::RoundScheduler plain(chain_a, {.max_in_flight = 1});
  deaddrop::InvitationTable expect = plain.SubmitDialing(round, batch, 4).get().table;

  coord::InvitationDistributor distributor;
  engine::SchedulerConfig config;
  config.max_in_flight = 1;
  config.distribution = &distributor;
  engine::RoundScheduler distributed(chain_b, config);
  distributed.SubmitDialing(round, batch, 4).get();

  for (uint32_t drop = 0; drop < 4; ++drop) {
    EXPECT_EQ(distributor.Fetch(round, drop), expect.Drop(drop)) << "bucket " << drop;
  }
}

// --- Failure injection -------------------------------------------------------

TEST(DistFailure, DeadShardFailsOnlyDialingRoundsAndRejoinsAfterRestart) {
  util::Xoshiro256Rng rng(513);
  mixnet::Chain chain = MakeChain(rng);
  auto group = DistGroup::Start(2);
  ASSERT_NE(group, nullptr);
  DistRouterConfig router_config = group->RouterConfig(/*recv_timeout_ms=*/2000);
  router_config.connect_timeout_ms = 1000;
  auto router = DistRouter::Connect(router_config);
  ASSERT_NE(router, nullptr);

  engine::SchedulerConfig config;
  config.max_in_flight = 2;
  config.distribution = router.get();
  engine::RoundScheduler scheduler(chain, config);

  // Healthy baseline: one dialing round distributes fine.
  uint64_t dial0 = coord::kDialingRoundBase;
  scheduler.SubmitDialing(dial0, DialBatch(chain, dial0, 6, 1), 4).get();
  ASSERT_TRUE(router->HasRound(dial0));

  group->Kill(1);

  // A dialing round now fails in its Distribute stage (shard 1 owns buckets
  // 2..3 of 4) — and only dialing: conversation rounds never touch the dist
  // tier.
  uint64_t dial1 = dial0 + 1;
  auto failed = scheduler.SubmitDialing(dial1, DialBatch(chain, dial1, 6, 2), 4);
  EXPECT_THROW(failed.get(), HopError);
  EXPECT_FALSE(router->HasRound(dial1));

  auto conversation = scheduler.SubmitConversation(1, ConversationBatch(chain, 1, 6, 3));
  EXPECT_NO_THROW(conversation.get());

  // Buckets of the already-published round split by ownership: the live
  // shard keeps serving its half, the dead shard's half fails.
  EXPECT_NO_THROW(router->Fetch(dial0, 0));
  EXPECT_THROW(router->Fetch(dial0, 3), HopError);

  // The restarted shard rejoins on the next dialing round with no recovery
  // protocol (it comes back empty; the next publish repopulates it).
  ASSERT_TRUE(group->Restart(1));
  uint64_t dial2 = dial0 + 2;
  EXPECT_NO_THROW(scheduler.SubmitDialing(dial2, DialBatch(chain, dial2, 6, 4), 4).get());
  EXPECT_TRUE(router->HasRound(dial2));
  EXPECT_NO_THROW(router->Fetch(dial2, 3));

  router->SendShutdown();
}

// --- Client-side DialingFetcher ---------------------------------------------

TEST(DialingFetcher, BucketsByteIdenticalToRouterFetch) {
  auto group = DistGroup::Start(4);
  ASSERT_NE(group, nullptr);
  auto router = DistRouter::Connect(group->RouterConfig());
  ASSERT_NE(router, nullptr);

  const uint32_t kNumDrops = 6;
  uint64_t round = coord::kDialingRoundBase + 9;
  router->Publish(round, MakeTable(kNumDrops, {4, 1, 0, 9, 2, 3}, 21));

  client::DialingFetcher fetcher(group->FetcherConfig());
  uint64_t expect_bytes = 0;
  for (uint32_t drop = 0; drop < kNumDrops; ++drop) {
    std::vector<wire::Invitation> bucket = fetcher.FetchBucket(round, drop, kNumDrops);
    EXPECT_EQ(bucket, router->Fetch(round, drop)) << "bucket " << drop;
    // bytes_fetched counts true wire bytes, framing included. Each bucket
    // reply here fits one chunk: length prefix + frame header, then the
    // chunk payload — flags byte, header_len (empty header), item_count,
    // and a length-prefixed invitation per item.
    expect_bytes += 4 + net::kFrameHeaderBytes + 1 + 4 + 4 +
                    bucket.size() * (4 + wire::kInvitationSize);
  }
  EXPECT_EQ(fetcher.buckets_fetched(), kNumDrops);
  EXPECT_EQ(fetcher.bytes_fetched(), expect_bytes);
}

TEST(DialingFetcher, SurfacesIncomingCallEndToEnd) {
  // Full stack: a caller dials through the mixnet, the deployment publishes
  // the round's table through the sharded backend, and the callee — offline
  // during the round — downloads its bucket with the client fetcher and
  // discovers the call.
  auto group = DistGroup::Start(2);
  ASSERT_NE(group, nullptr);
  auto router = DistRouter::Connect(group->RouterConfig());
  ASSERT_NE(router, nullptr);

  sim::DeploymentConfig config;
  config.num_servers = 2;
  config.conversation_noise = {.params = {2.0, 1.0}, .deterministic = true};
  config.dialing_noise = {.params = {2.0, 1.0}, .deterministic = true};
  config.seed = 99;
  sim::Deployment deployment(config);
  deployment.SetDistributionBackend(router.get());
  size_t alice = deployment.AddClient();
  size_t bob = deployment.AddClient();

  deployment.client(alice).Dial(deployment.client(bob).public_key());
  deployment.SetClientOnline(bob, false);  // bob misses the round's delivery
  auto outcome = deployment.RunDialingRound();

  client::DialingFetcher fetcher(group->FetcherConfig());
  size_t scanned =
      fetcher.FetchFor(deployment.client(bob), outcome.round, deployment.dial_config());
  EXPECT_GT(scanned, 0u);
  auto calls = deployment.client(bob).TakeIncomingCalls();
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].caller, deployment.client(alice).public_key());
}

TEST(CoordinatorProxy, ServesClientBucketFetchesOverTcp) {
  // The coordinator's kInvitationFetch proxy: a TCP client with no direct
  // dist-fleet route asks the coordinator for its bucket after each dialing
  // round's ack, and gets the bucket bytes (kInvitationDrop) — or an error
  // report for a round the distribution tier no longer holds.
  const uint64_t kSeed = 4242;
  mixnet::ChainConfig chain_config;
  chain_config.num_servers = 2;
  chain_config.conversation_noise = {.params = {2.0, 1.0}, .deterministic = true};
  chain_config.dialing_noise = {.params = {2.0, 1.0}, .deterministic = true};
  chain_config.parallel = false;
  auto chain = LoopbackChain::Start(chain_config, kSeed);
  ASSERT_NE(chain, nullptr);

  CoordDaemonConfig config;
  for (size_t i = 0; i < chain->size(); ++i) {
    config.hops.push_back({"127.0.0.1", chain->port(i)});
  }
  config.scheduler.max_in_flight = 2;
  config.schedule.conversation_rounds_per_dialing_round = 1;  // alternate C/D
  // 3 conversation + 2 dialing; ending on a conversation round keeps the
  // coordinator serving while the second dialing round's fetch is in flight
  // (a fetch racing teardown would be dropped, flaking the count below).
  config.total_rounds = 5;
  config.admission_window_seconds = 0.2;  // closes early once the client contributed
  config.hop_timeout_ms = 2000;
  config.num_clients = 1;
  config.key_seed = kSeed;
  config.shutdown_hops_on_exit = true;

  CoordinatorDaemon coordinator(std::move(config));
  ASSERT_TRUE(coordinator.Start());

  std::atomic<int> buckets_received{0};
  std::atomic<int> ragged_buckets{0};
  std::atomic<int> error_replies{0};
  std::thread client([&] {
    auto conn = net::TcpConnection::Connect("127.0.0.1", coordinator.client_port());
    if (!conn) {
      return;
    }
    bool probed_unknown_round = false;
    while (auto frame = conn->RecvFrame()) {
      if (frame->type == net::FrameType::kShutdown) {
        return;
      }
      if (frame->type == net::FrameType::kRoundAnnouncement) {
        auto announcement = wire::RoundAnnouncement::Parse(frame->payload);
        if (!announcement) {
          continue;
        }
        // Garbage onions exercise the round plumbing only; the chain drops
        // them and the dialing table still carries its noise invitations.
        net::FrameType type = announcement->type == wire::RoundType::kConversation
                                  ? net::FrameType::kConversationRequest
                                  : net::FrameType::kDialRequest;
        conn->SendFrame(net::Frame{type, announcement->round, util::Bytes(416, 0xab)});
      } else if (frame->type == net::FrameType::kDialAck) {
        // The ack means the round completed AND its table was distributed:
        // download bucket 0 through the coordinator.
        util::Bytes index(4, 0);
        conn->SendFrame(net::Frame{net::FrameType::kInvitationFetch, frame->round, index});
        if (!probed_unknown_round) {
          probed_unknown_round = true;
          conn->SendFrame(
              net::Frame{net::FrameType::kInvitationFetch, frame->round + 999, index});
        }
      } else if (frame->type == net::FrameType::kInvitationDrop) {
        ++buckets_received;
        // Deterministic mu=2 noise guarantees a non-empty bucket of whole
        // invitations.
        if (frame->payload.empty() || frame->payload.size() % wire::kInvitationSize != 0) {
          ++ragged_buckets;
        }
      } else if (frame->type == net::FrameType::kHopError) {
        ++error_replies;
      }
    }
  });

  CoordDaemonResult result = coordinator.Run();
  client.join();

  EXPECT_EQ(result.dialing_rounds_completed, 2u);
  EXPECT_EQ(result.rounds_abandoned, 0u);
  EXPECT_EQ(buckets_received.load(), 2);  // one proxied download per dialing round
  EXPECT_EQ(ragged_buckets.load(), 0);
  EXPECT_EQ(error_replies.load(), 1);  // the unknown-round probe was refused
  EXPECT_EQ(result.dialing_fetches, 2u);
  EXPECT_GT(result.dialing_fetch_bytes, 0u);
  // Client-proxied fetches never raise `expected` — a client mistake must
  // not read as a coordinator failure.
  EXPECT_EQ(result.dialing_fetches_expected, 0u);
}

TEST(DistDaemon, ServesConcurrentDownloadersWhilePublishing) {
  // A dist shard is a broadcast server: the router's publish connection and
  // many client downloads run concurrently. Hammer one fleet from several
  // fetchers while new rounds publish, and require every download to be
  // internally consistent (all-or-nothing bucket bytes).
  auto group = DistGroup::Start(2);
  ASSERT_NE(group, nullptr);
  DistRouterConfig router_config = group->RouterConfig();
  router_config.keep_rounds = 16;  // keep the hammered round resident throughout
  auto router = DistRouter::Connect(router_config);
  ASSERT_NE(router, nullptr);

  const uint32_t kNumDrops = 4;
  const uint64_t base = coord::kDialingRoundBase + 50;
  router->Publish(base, MakeTable(kNumDrops, {5, 5, 5, 5}, 1));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> fetched{0};
  std::vector<std::thread> downloaders;
  for (int t = 0; t < 4; ++t) {
    downloaders.emplace_back([&, t] {
      client::DialingFetcher fetcher(group->FetcherConfig());
      uint32_t drop = static_cast<uint32_t>(t) % kNumDrops;
      while (!stop.load()) {
        std::vector<wire::Invitation> bucket = fetcher.FetchBucket(base, drop, kNumDrops);
        ASSERT_EQ(bucket.size(), 5u);
        fetched.fetch_add(1);
      }
    });
  }
  for (uint64_t r = 1; r <= 8; ++r) {
    router->Publish(base + r, MakeTable(kNumDrops, {r, r, r, r}, r));
    router->Expire(16);
  }
  stop.store(true);
  for (auto& thread : downloaders) {
    thread.join();
  }
  EXPECT_GT(fetched.load(), 0u);
  router->SendShutdown();
}

}  // namespace
}  // namespace vuvuzela::transport
