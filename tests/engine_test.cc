// RoundScheduler engine tests: state expiry for rounds abandoned
// mid-pipeline, failure isolation, scheduler configuration, and the
// coord::RoundSchedule-driven conversation/dialing interleave.

#include <gtest/gtest.h>

#include <future>

#include "src/coord/coordinator.h"
#include "src/engine/round_scheduler.h"
#include "src/mixnet/chain.h"
#include "src/sim/workload.h"
#include "src/util/random.h"

namespace vuvuzela::engine {
namespace {

mixnet::Chain MakeChain(util::Rng& rng, size_t servers = 3, bool parallel = false) {
  mixnet::ChainConfig config;
  config.num_servers = servers;
  config.conversation_noise = {.params = {3.0, 1.0}, .deterministic = true};
  config.dialing_noise = {.params = {2.0, 1.0}, .deterministic = true};
  config.parallel = parallel;
  return mixnet::Chain::Create(config, rng);
}

std::vector<util::Bytes> ConversationBatch(const mixnet::Chain& chain, uint64_t round,
                                           uint64_t users, uint64_t seed) {
  sim::WorkloadConfig workload{
      .num_users = users, .pairing_fraction = 1.0, .seed = seed, .parallel = false};
  return sim::GenerateConversationWorkload(workload, chain.public_keys(), round);
}

TEST(RoundScheduler, RejectsBadConfig) {
  util::Xoshiro256Rng rng(1);
  mixnet::Chain chain = MakeChain(rng);
  EXPECT_THROW(RoundScheduler(chain, {.max_in_flight = 0}), std::invalid_argument);
  EXPECT_THROW(RoundScheduler(chain, {.max_in_flight = 8, .expire_keep = 2}),
               std::invalid_argument);
}

TEST(RoundScheduler, ExpiresRoundsAbandonedMidPipeline) {
  util::Xoshiro256Rng rng(2);
  mixnet::Chain chain = MakeChain(rng);

  // Strand round 1 at server 0: its forward pass ran but the rest of the
  // chain never saw it (a crashed downstream hop). Its return-pass state is
  // now pinned in server 0's memory.
  chain.server(0).ForwardConversation(1, ConversationBatch(chain, 1, 4, 11));
  ASSERT_EQ(chain.server(0).pending_rounds(), 1u);

  RoundScheduler scheduler(chain, {.max_in_flight = 2, .expire_keep = 3});
  std::vector<std::future<mixnet::Chain::ConversationResult>> futures;
  for (uint64_t round = 2; round <= 10; ++round) {
    futures.push_back(
        scheduler.SubmitConversation(round, ConversationBatch(chain, round, 4, round)));
  }
  scheduler.Drain();
  for (auto& f : futures) {
    f.get();
  }

  // Rounds driven by the scheduler cleared their own state on the return
  // pass; the abandoned round was expired as newer rounds flowed through.
  EXPECT_EQ(chain.server(0).pending_rounds(), 0u);
  EXPECT_EQ(chain.server(1).pending_rounds(), 0u);
}

TEST(RoundScheduler, ExpiryKeepsRecentRoundsAlive) {
  util::Xoshiro256Rng rng(3);
  mixnet::Chain chain = MakeChain(rng);

  // A round just behind the pipeline window must NOT be expired: with
  // expire_keep = 8, round 4's state survives rounds 5..10.
  chain.server(0).ForwardConversation(4, ConversationBatch(chain, 4, 4, 21));

  RoundScheduler scheduler(chain, {.max_in_flight = 2, .expire_keep = 8});
  std::vector<std::future<mixnet::Chain::ConversationResult>> futures;
  for (uint64_t round = 5; round <= 10; ++round) {
    futures.push_back(
        scheduler.SubmitConversation(round, ConversationBatch(chain, round, 4, round)));
  }
  scheduler.Drain();
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(chain.server(0).pending_rounds(), 1u);  // round 4 still waiting
}

TEST(RoundScheduler, GapInRoundNumbersDoesNotKillInFlightRounds) {
  util::Xoshiro256Rng rng(7);
  mixnet::Chain chain = MakeChain(rng);
  RoundScheduler scheduler(chain, {.max_in_flight = 3, .expire_keep = 3});

  // Rounds 1 and 2 are still in flight when round 1000 is admitted; expiry
  // is measured from the oldest live round, so the gap must not expire them.
  std::vector<std::future<mixnet::Chain::ConversationResult>> futures;
  for (uint64_t round : {1ull, 2ull, 1000ull}) {
    futures.push_back(
        scheduler.SubmitConversation(round, ConversationBatch(chain, round, 4, round)));
  }
  scheduler.Drain();
  for (auto& f : futures) {
    EXPECT_NO_THROW(f.get());
  }
  EXPECT_EQ(scheduler.stats().rounds_failed, 0u);
}

TEST(RoundScheduler, FailedRoundReleasesItsSlot) {
  util::Xoshiro256Rng rng(4);
  mixnet::Chain chain = MakeChain(rng);
  RoundScheduler scheduler(chain, {.max_in_flight = 2});

  // num_drops = 0 faults at the last hop (InvitationTable rejects it); the
  // failure must surface through the future, count in stats, and free the
  // pipeline slot for later rounds.
  auto bad = scheduler.SubmitDialing(coord::kDialingRoundBase, {}, /*num_drops=*/0);
  EXPECT_THROW(bad.get(), std::invalid_argument);

  auto good = scheduler.SubmitConversation(1, ConversationBatch(chain, 1, 4, 31));
  EXPECT_EQ(good.get().stats.forward.size(), chain.size());

  auto stats = scheduler.stats();
  EXPECT_EQ(stats.rounds_failed, 1u);
  EXPECT_EQ(stats.conversation_rounds_completed, 1u);
  EXPECT_EQ(scheduler.in_flight(), 0u);
}

TEST(RoundScheduler, SingleServerChainCompletesRounds) {
  util::Xoshiro256Rng rng(5);
  mixnet::Chain chain = MakeChain(rng, /*servers=*/1);
  RoundScheduler scheduler(chain, {.max_in_flight = 3});
  std::vector<std::future<mixnet::Chain::ConversationResult>> futures;
  for (uint64_t round = 1; round <= 5; ++round) {
    futures.push_back(
        scheduler.SubmitConversation(round, ConversationBatch(chain, round, 4, round)));
  }
  scheduler.Drain();
  for (auto& f : futures) {
    auto result = f.get();
    EXPECT_EQ(result.responses.size(), 4u);
    EXPECT_GE(result.messages_exchanged, 4u);
  }
}

TEST(RoundScheduler, RunScheduleInterleavesDialingRounds) {
  util::Xoshiro256Rng rng(6);
  mixnet::Chain chain = MakeChain(rng);
  RoundScheduler scheduler(chain, {.max_in_flight = 3});

  coord::ScheduleConfig schedule_config;
  schedule_config.conversation_rounds_per_dialing_round = 3;
  schedule_config.dial_dead_drops = 2;
  coord::RoundSchedule schedule(schedule_config);

  dialing::RoundConfig dial_config{.num_real_drops = 1};
  auto workload = [&](const wire::RoundAnnouncement& announcement) -> std::vector<util::Bytes> {
    sim::WorkloadConfig config{
        .num_users = 4, .pairing_fraction = 1.0, .seed = announcement.round, .parallel = false};
    if (announcement.type == wire::RoundType::kConversation) {
      return sim::GenerateConversationWorkload(config, chain.public_keys(), announcement.round);
    }
    return sim::GenerateDialingWorkload(config, chain.public_keys(), announcement.round,
                                        dial_config, /*dial_fraction=*/0.5);
  };

  auto result = scheduler.RunSchedule(schedule, /*total_rounds=*/8, workload);
  // Every 4th announcement is a dialing round: 8 rounds = 6 conversation + 2
  // dialing.
  EXPECT_EQ(result.conversation_rounds, 6u);
  EXPECT_EQ(result.dialing_rounds, 2u);
  EXPECT_GT(result.messages_exchanged, 0u);
  EXPECT_GT(result.messages_per_second, 0.0);
  EXPECT_EQ(schedule.conversation_rounds_announced(), 6u);
  EXPECT_EQ(schedule.dialing_rounds_announced(), 2u);

  auto stats = scheduler.stats();
  EXPECT_EQ(stats.conversation_rounds_completed, 6u);
  EXPECT_EQ(stats.dialing_rounds_completed, 2u);
  EXPECT_EQ(stats.rounds_failed, 0u);
}

}  // namespace
}  // namespace vuvuzela::engine
