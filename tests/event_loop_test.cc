// net::EventLoop reactor tests: framing over edge-triggered readiness, slow
// readers and buffered writes, connection storms, adversarial disconnects,
// and a descriptor-limit-scaled soak in one process.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/event_loop.h"
#include "src/net/tcp.h"

namespace vuvuzela::net {
namespace {

using namespace std::chrono_literals;

// An EventLoop echo server on its own thread: every received frame is sent
// straight back. The base harness for the client-side tests.
class EchoServer {
 public:
  explicit EchoServer(EventLoopConfig config = {}) {
    EventLoop::Handlers handlers;
    handlers.on_frame = [this](EventLoop::ConnId id, Frame&& frame) {
      frames_seen_.fetch_add(1);
      loop_->Send(id, frame);
    };
    handlers.on_close = [this](EventLoop::ConnId) { closes_seen_.fetch_add(1); };
    loop_ = EventLoop::Create(std::move(handlers), config);
    auto listener = TcpListener::Listen(0, /*backlog=*/4096);
    port_ = listener->port();
    loop_->AddListener(std::move(*listener));
    thread_ = std::thread([this] { loop_->Run(); });
  }

  ~EchoServer() {
    loop_->Stop();
    thread_.join();
  }

  uint16_t port() const { return port_; }
  EventLoop& loop() { return *loop_; }
  size_t frames_seen() const { return frames_seen_.load(); }
  size_t closes_seen() const { return closes_seen_.load(); }

  bool WaitFrames(size_t n, std::chrono::milliseconds budget = 10000ms) {
    auto deadline = std::chrono::steady_clock::now() + budget;
    while (frames_seen_.load() < n) {
      if (std::chrono::steady_clock::now() > deadline) {
        return false;
      }
      std::this_thread::sleep_for(1ms);
    }
    return true;
  }

  bool WaitCloses(size_t n, std::chrono::milliseconds budget = 10000ms) {
    auto deadline = std::chrono::steady_clock::now() + budget;
    while (closes_seen_.load() < n) {
      if (std::chrono::steady_clock::now() > deadline) {
        return false;
      }
      std::this_thread::sleep_for(1ms);
    }
    return true;
  }

 private:
  std::unique_ptr<EventLoop> loop_;
  std::thread thread_;
  uint16_t port_ = 0;
  std::atomic<size_t> frames_seen_{0};
  std::atomic<size_t> closes_seen_{0};
};

TEST(EventLoop, EchoRoundTrip) {
  EchoServer server;
  auto conn = TcpConnection::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(conn.has_value());
  Frame frame{FrameType::kConversationRequest, 7, util::Bytes(416, 0xab)};
  ASSERT_TRUE(conn->SendFrame(frame));
  auto echoed = conn->RecvFrame();
  ASSERT_TRUE(echoed.has_value());
  EXPECT_EQ(echoed->type, frame.type);
  EXPECT_EQ(echoed->round, 7u);
  EXPECT_EQ(echoed->payload, frame.payload);
}

TEST(EventLoop, ManyFramesOneConnectionPreserveOrder) {
  EchoServer server;
  auto conn = TcpConnection::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(conn.has_value());
  constexpr uint64_t kFrames = 200;
  for (uint64_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(conn->SendFrame(Frame{FrameType::kDialRequest, i, util::Bytes(64, uint8_t(i))}));
  }
  for (uint64_t i = 0; i < kFrames; ++i) {
    auto echoed = conn->RecvFrame();
    ASSERT_TRUE(echoed.has_value());
    EXPECT_EQ(echoed->round, i);  // per-connection FIFO survives the reactor
  }
}

// Readiness storm: every client fires at once; edge-triggered dispatch must
// not lose frames or connections.
TEST(EventLoop, ReadinessStorm) {
  EchoServer server;
  constexpr size_t kClients = 256;
  std::vector<TcpConnection> conns;
  conns.reserve(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    auto conn = TcpConnection::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(conn.has_value());
    conns.push_back(std::move(*conn));
  }
  for (size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(conns[i].SendFrame(Frame{FrameType::kConversationRequest, i, {1, 2, 3}}));
  }
  ASSERT_TRUE(server.WaitFrames(kClients));
  for (auto& conn : conns) {
    auto echoed = conn.RecvFrame();
    ASSERT_TRUE(echoed.has_value());
  }
}

// A reply far larger than the socket buffers forces the partial-write path:
// the loop must buffer and flush on EPOLLOUT edges while the reader drains
// slowly, and the frame must arrive intact.
TEST(EventLoop, SlowReaderGetsBufferedWrites) {
  EchoServer server;
  auto conn = TcpConnection::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(conn.has_value());
  util::Bytes big(8u << 20);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 31);
  }
  ASSERT_TRUE(conn->SendFrame(Frame{FrameType::kInvitationDrop, 3, big}));
  std::this_thread::sleep_for(50ms);  // let the echo hit EAGAIN and buffer
  auto echoed = conn->RecvFrame();
  ASSERT_TRUE(echoed.has_value());
  EXPECT_EQ(echoed->payload, big);
}

// A receiver that never reads must be shed at the write-buffer cap, not
// allowed to wedge the loop or grow memory without bound.
TEST(EventLoop, WriteBufferCapShedsDeadReader) {
  EventLoopConfig config;
  config.max_write_buffer = 1u << 20;
  EchoServer server(config);
  auto conn = TcpConnection::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(conn.has_value());
  // Each echo of a 256 KB frame lands in the server's write buffer; the
  // client never reads, so the cap trips within a few frames.
  util::Bytes chunk(256u << 10, 0x5a);
  for (int i = 0; i < 64 && server.closes_seen() == 0; ++i) {
    if (!conn->SendFrame(Frame{FrameType::kInvitationDrop, 1, chunk})) {
      break;  // server already cut us off mid-send
    }
  }
  EXPECT_TRUE(server.WaitCloses(1));
}

// A client dying mid-frame must fire on_close and deliver nothing.
TEST(EventLoop, MidFrameDisconnect) {
  EchoServer server;
  {
    auto conn = TcpConnection::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(conn.has_value());
    // Hand-build a frame announcing 1 MB and ship only the first bytes.
    util::Bytes wire = EventLoop::EncodeWireFrame(
        Frame{FrameType::kConversationRequest, 9, util::Bytes(1u << 20, 0xcd)});
    wire.resize(4096);
    int fd = conn->ReleaseFd();
    ASSERT_EQ(::write(fd, wire.data(), wire.size()), static_cast<ssize_t>(wire.size()));
    ::close(fd);
  }
  EXPECT_TRUE(server.WaitCloses(1));
  EXPECT_EQ(server.frames_seen(), 0u);
}

// A length prefix past the configured cap is cut off before the allocation.
TEST(EventLoop, OversizedFrameLengthCloses) {
  EventLoopConfig config;
  config.max_frame_payload = 1u << 16;
  EchoServer server(config);
  auto conn = TcpConnection::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(conn.has_value());
  uint8_t prefix[4];
  util::StoreBe32(prefix, (1u << 20) + static_cast<uint32_t>(kFrameHeaderBytes));
  int fd = conn->ReleaseFd();
  ASSERT_EQ(::write(fd, prefix, sizeof(prefix)), 4);
  EXPECT_TRUE(server.WaitCloses(1));
  ::close(fd);
}

// Garbage that parses as a length but not as a frame (bad type byte) also
// closes the connection instead of reaching handlers.
TEST(EventLoop, UndecodableFrameCloses) {
  EchoServer server;
  auto conn = TcpConnection::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(conn.has_value());
  Frame frame{FrameType::kDialAck, 1, {9}};
  util::Bytes wire = EventLoop::EncodeWireFrame(frame);
  wire[4] = 250;  // invalid FrameType
  int fd = conn->ReleaseFd();
  ASSERT_EQ(::write(fd, wire.data(), wire.size()), static_cast<ssize_t>(wire.size()));
  EXPECT_TRUE(server.WaitCloses(1));
  EXPECT_EQ(server.frames_seen(), 0u);
  ::close(fd);
}

TEST(EventLoop, PostRunsOnLoopThread) {
  EchoServer server;
  std::atomic<bool> ran{false};
  std::thread::id loop_thread;
  std::mutex mutex;
  std::condition_variable cv;
  server.loop().Post([&] {
    {
      std::lock_guard<std::mutex> lock(mutex);
      loop_thread = std::this_thread::get_id();
      ran.store(true);
    }
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return ran.load(); }));
  EXPECT_NE(loop_thread, std::this_thread::get_id());
}

// Client-side adoption: the loop drives an *outbound* connection — the shape
// the synthetic-client load generator runs at 100k scale.
TEST(EventLoop, AdoptedOutboundConnection) {
  EchoServer server;

  std::atomic<bool> got_reply{false};
  std::unique_ptr<EventLoop> client_loop;
  EventLoop::Handlers handlers;
  handlers.on_frame = [&](EventLoop::ConnId, Frame&& frame) {
    if (frame.round == 77) {
      got_reply.store(true);
      client_loop->Stop();
    }
  };
  client_loop = EventLoop::Create(std::move(handlers));
  auto conn = TcpConnection::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(conn.has_value());
  EventLoop::ConnId id = client_loop->AddConnection(std::move(*conn));
  ASSERT_NE(id, 0u);
  ASSERT_TRUE(client_loop->Send(id, Frame{FrameType::kConversationRequest, 77, {1}}));
  std::thread t([&] { client_loop->Run(); });
  t.join();
  EXPECT_TRUE(got_reply.load());
}

TEST(EventLoop, CloseConnFlushesPendingWritesFirst) {
  // Server sends a large frame and immediately closes: the client must still
  // receive the whole frame (graceful drain), then see EOF.
  std::unique_ptr<EventLoop> loop;
  util::Bytes big(4u << 20, 0x7e);
  EventLoop::Handlers handlers;
  handlers.on_accept = [&](EventLoop::ConnId id, uint64_t) {
    loop->Send(id, Frame{FrameType::kInvitationDrop, 5, big});
    loop->CloseConn(id);
  };
  loop = EventLoop::Create(std::move(handlers));
  auto listener = TcpListener::Listen(0);
  uint16_t port = listener->port();
  ASSERT_TRUE(loop->AddListener(std::move(*listener)));
  std::thread t([&] { loop->Run(); });

  auto conn = TcpConnection::Connect("127.0.0.1", port);
  ASSERT_TRUE(conn.has_value());
  auto frame = conn->RecvFrame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, big);
  EXPECT_FALSE(conn->RecvFrame().has_value());
  EXPECT_EQ(conn->last_recv_status(), RecvStatus::kEof);

  loop->Stop();
  t.join();
}

// Soak: as many concurrent connections as the process's descriptor budget
// allows (target 10k), each submitting one frame — one loop thread serves
// them all. Client sockets live in this same process, so each connection
// costs two descriptors.
TEST(EventLoop, TenThousandConnectionSoak) {
  rlimit limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &limit), 0);
  if (limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &limit), 0);
  }
  const size_t budget = static_cast<size_t>(limit.rlim_cur);
  const size_t kConns = std::min<size_t>(10000, (budget - 128) / 2);

  EchoServer server;
  std::vector<TcpConnection> conns;
  conns.reserve(kConns);
  for (size_t i = 0; i < kConns; ++i) {
    auto conn = TcpConnection::Connect("127.0.0.1", server.port(), /*timeout_ms=*/10000);
    ASSERT_TRUE(conn.has_value()) << "connect " << i << " failed";
    conns.push_back(std::move(*conn));
  }
  for (size_t i = 0; i < kConns; ++i) {
    ASSERT_TRUE(
        conns[i].SendFrame(Frame{FrameType::kConversationRequest, i, util::Bytes(32, 0x11)}));
  }
  ASSERT_TRUE(server.WaitFrames(kConns, 60000ms));
  EXPECT_EQ(server.loop().connections(), kConns);
  // Spot-check echoes across the fleet rather than serially draining all.
  for (size_t i = 0; i < kConns; i += kConns / 97 + 1) {
    auto echoed = conns[i].RecvFrame();
    ASSERT_TRUE(echoed.has_value());
    EXPECT_EQ(echoed->round, i);
  }
  conns.clear();
  EXPECT_TRUE(server.WaitCloses(kConns, 60000ms));
}

}  // namespace
}  // namespace vuvuzela::net
