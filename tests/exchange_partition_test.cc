// Exchange-partition conformance and robustness.
//
// The partitioned last-hop exchange (ExchangeRouter over vuvuzela-exchanged
// shard servers) must be byte-identical to the in-process paths it replaces:
// the sequential ExchangeRound, the thread-sharded ShardedExchangeRound, and
// a full chain run whose last server uses the default backend. The suite
// proves that for shard counts {1, 2, 4, 7} on mixed conversation and
// invitation workloads, then fuzzes the new exchange-partition wire messages
// (malformed partition maps, mid-chunk truncation, oversized reassembly) in
// the style of tests/wire_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <future>

#include "src/deaddrop/exchange_backend.h"
#include "src/engine/round_scheduler.h"
#include "src/sim/workload.h"
#include "src/transport/hop_chain.h"
#include "src/util/random.h"

namespace vuvuzela::transport {
namespace {

// --- Workloads ---------------------------------------------------------------

// Mixed conversation-exchange workload: paired drops, unmatched singles, one
// crowded (3-access) drop, and clusters hugging the prefix-space boundaries
// (first byte 0x00 / 0xff) so edge shards see traffic at every shard count.
std::vector<wire::ExchangeRequest> MixedExchangeRequests(uint64_t seed) {
  util::Xoshiro256Rng rng(seed);
  std::vector<wire::ExchangeRequest> requests;
  auto random_request = [&] {
    wire::ExchangeRequest request;
    rng.Fill(request.dead_drop);
    rng.Fill(request.envelope);
    return request;
  };
  for (int i = 0; i < 40; ++i) {  // 40 pairs
    wire::ExchangeRequest first = random_request();
    wire::ExchangeRequest second = random_request();
    second.dead_drop = first.dead_drop;
    requests.push_back(first);
    requests.push_back(second);
  }
  for (int i = 0; i < 17; ++i) {  // 17 singles
    requests.push_back(random_request());
  }
  wire::ExchangeRequest crowded = random_request();
  for (int i = 0; i < 3; ++i) {  // one crowded drop
    wire::ExchangeRequest access = random_request();
    access.dead_drop = crowded.dead_drop;
    requests.push_back(access);
  }
  for (uint8_t edge : {uint8_t{0x00}, uint8_t{0xff}}) {  // boundary clusters
    for (int i = 0; i < 5; ++i) {
      wire::ExchangeRequest request = random_request();
      request.dead_drop[0] = edge;
      requests.push_back(request);
    }
  }
  // Deterministic shuffle: pairing is input-order sensitive, so the shuffle
  // itself is part of the fixture.
  for (size_t i = requests.size(); i > 1; --i) {
    std::swap(requests[i - 1], requests[rng.UniformUint64(i)]);
  }
  return requests;
}

std::vector<wire::DialRequest> MixedDialRequests(uint32_t num_drops, uint64_t seed) {
  util::Xoshiro256Rng rng(seed);
  std::vector<wire::DialRequest> requests;
  for (int i = 0; i < 60; ++i) {
    wire::DialRequest request;
    // Mostly in range, some adversarially far out of range (reduced mod m).
    request.dead_drop_index = static_cast<uint32_t>(
        i % 7 == 0 ? rng.UniformUint64(1ull << 32) : rng.UniformUint64(num_drops));
    rng.Fill(request.invitation);
    requests.push_back(request);
  }
  return requests;
}

std::vector<deaddrop::NoiseInvitation> MixedNoise(uint32_t num_drops, uint64_t seed) {
  util::Xoshiro256Rng rng(seed);
  std::vector<deaddrop::NoiseInvitation> noise;
  for (uint32_t d = 0; d < num_drops; ++d) {
    for (uint64_t j = 0; j < 2 + rng.UniformUint64(3); ++j) {
      deaddrop::NoiseInvitation fake;
      fake.drop = d;
      rng.Fill(fake.invitation);
      noise.push_back(fake);
    }
  }
  return noise;
}

// --- Cross-backend conformance ----------------------------------------------

class ExchangePartitionConformance : public ::testing::TestWithParam<size_t> {};

TEST_P(ExchangePartitionConformance, ConversationByteIdenticalToInProcessPaths) {
  size_t num_shards = GetParam();
  std::vector<wire::ExchangeRequest> requests = MixedExchangeRequests(101);

  deaddrop::ExchangeOutcome sequential = deaddrop::ExchangeRound(requests);
  deaddrop::ExchangeOutcome sharded = deaddrop::ShardedExchangeRound(requests, num_shards);

  auto group = ExchangePartitionGroup::Start(num_shards);
  ASSERT_NE(group, nullptr);
  auto router = ExchangeRouter::Connect(group->RouterConfig());
  ASSERT_NE(router, nullptr);
  deaddrop::ExchangeOutcome partitioned = router->ExchangeConversation(7, requests);

  // The three paths must agree byte for byte: per-request envelopes, the
  // adversary-observable histogram, and the exchange count.
  EXPECT_EQ(sequential.results, sharded.results);
  EXPECT_EQ(sequential.results, partitioned.results);
  for (const deaddrop::ExchangeOutcome* outcome : {&sharded, &partitioned}) {
    EXPECT_EQ(outcome->histogram.singles, sequential.histogram.singles);
    EXPECT_EQ(outcome->histogram.pairs, sequential.histogram.pairs);
    EXPECT_EQ(outcome->histogram.crowded, sequential.histogram.crowded);
    EXPECT_EQ(outcome->messages_exchanged, sequential.messages_exchanged);
  }
}

TEST_P(ExchangePartitionConformance, InvitationTableByteIdenticalToInProcess) {
  size_t num_shards = GetParam();
  constexpr uint32_t kDrops = 5;
  std::vector<wire::DialRequest> requests = MixedDialRequests(kDrops, 202);
  std::vector<deaddrop::NoiseInvitation> noise = MixedNoise(kDrops, 203);

  deaddrop::InProcessExchangeBackend in_process(1);
  deaddrop::InvitationTable local = in_process.BuildInvitationTable(9, kDrops, requests, noise);

  auto group = ExchangePartitionGroup::Start(num_shards);
  ASSERT_NE(group, nullptr);
  auto router = ExchangeRouter::Connect(group->RouterConfig());
  ASSERT_NE(router, nullptr);
  deaddrop::InvitationTable partitioned = router->BuildInvitationTable(9, kDrops, requests, noise);

  ASSERT_EQ(partitioned.num_drops(), local.num_drops());
  EXPECT_EQ(partitioned.DropSizes(), local.DropSizes());
  for (uint32_t drop = 0; drop < kDrops; ++drop) {
    EXPECT_EQ(partitioned.Drop(drop), local.Drop(drop)) << "drop " << drop;
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ExchangePartitionConformance,
                         ::testing::Values(1, 2, 4, 7),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "Shards" + std::to_string(info.param);
                         });

// --- Full-chain conformance --------------------------------------------------
//
// The same pipelined multi-round workload as the transport conformance suite,
// run three ways: in-process servers with the default exchange, in-process
// servers whose last hop routes to exchange partitions, and a loopback-TCP
// chain whose last hop daemon routes to exchange partitions. All three must
// produce byte-identical rounds.

mixnet::ChainConfig PartitionChainConfig() {
  mixnet::ChainConfig config;
  config.num_servers = 3;
  config.conversation_noise = {.params = {3.0, 1.0}, .deterministic = true};
  config.dialing_noise = {.params = {2.0, 1.0}, .deterministic = true};
  config.parallel = false;
  config.exchange_shards = 1;
  return config;
}

constexpr uint64_t kKeySeed = 0xfeed;
constexpr uint64_t kConversationRounds = 3;
constexpr uint64_t kUsers = 10;
constexpr uint32_t kDialDrops = 3;
// Force multi-chunk streaming on the partition wire too.
constexpr size_t kTestChunkPayload = 2048;

struct RunOutcome {
  std::vector<std::vector<util::Bytes>> responses;
  std::vector<uint64_t> singles, pairs, exchanged;
  std::vector<uint64_t> dial_drop_sizes;
  std::vector<std::vector<wire::Invitation>> dial_drops;
};

RunOutcome RunThroughScheduler(std::vector<std::unique_ptr<HopTransport>> hops) {
  auto keys = DeriveChainKeys(kKeySeed, PartitionChainConfig().num_servers);
  engine::RoundScheduler scheduler(std::move(hops), {.max_in_flight = 3});
  std::vector<std::future<mixnet::Chain::ConversationResult>> futures;
  for (uint64_t round = 1; round <= kConversationRounds; ++round) {
    sim::WorkloadConfig config{
        .num_users = kUsers, .pairing_fraction = 1.0, .seed = 31 + round, .parallel = false};
    futures.push_back(scheduler.SubmitConversation(
        round, sim::GenerateConversationWorkload(config, keys.public_keys, round)));
  }
  sim::WorkloadConfig config{
      .num_users = kUsers, .pairing_fraction = 1.0, .seed = 77, .parallel = false};
  dialing::RoundConfig dial_config{.num_real_drops = kDialDrops - 1};
  auto dial_future = scheduler.SubmitDialing(
      coord::kDialingRoundBase,
      sim::GenerateDialingWorkload(config, keys.public_keys, coord::kDialingRoundBase,
                                   dial_config, 0.5),
      kDialDrops);
  scheduler.Drain();

  RunOutcome outcome;
  for (auto& future : futures) {
    mixnet::Chain::ConversationResult result = future.get();
    outcome.responses.push_back(std::move(result.responses));
    outcome.singles.push_back(result.histogram.singles);
    outcome.pairs.push_back(result.histogram.pairs);
    outcome.exchanged.push_back(result.messages_exchanged);
  }
  mixnet::Chain::DialingResult dial_result = dial_future.get();
  outcome.dial_drop_sizes = dial_result.table.DropSizes();
  for (uint32_t i = 0; i < dial_result.table.num_drops(); ++i) {
    outcome.dial_drops.push_back(dial_result.table.Drop(i));
  }
  return outcome;
}

enum class ChainMode { kInProcess, kPartitionedLocal, kPartitionedTcp };

RunOutcome RunChain(ChainMode mode, size_t num_partitions) {
  mixnet::ChainConfig config = PartitionChainConfig();
  if (mode == ChainMode::kInProcess) {
    auto servers = BuildMixServers(config, DeriveChainKeys(kKeySeed, config.num_servers));
    return RunThroughScheduler(MakeLocalTransports(servers));
  }
  auto group = ExchangePartitionGroup::Start(num_partitions, kTestChunkPayload);
  EXPECT_NE(group, nullptr);
  if (mode == ChainMode::kPartitionedLocal) {
    auto servers = BuildMixServers(config, DeriveChainKeys(kKeySeed, config.num_servers));
    auto router = ExchangeRouter::Connect(group->RouterConfig());
    EXPECT_NE(router, nullptr);
    servers.back()->SetExchangeBackend(router.get());
    return RunThroughScheduler(MakeLocalTransports(servers));
  }
  auto chain = LoopbackChain::Start(config, kKeySeed, kTestChunkPayload, group->RouterConfig());
  EXPECT_NE(chain, nullptr);
  auto transports = chain->ConnectTransports();
  EXPECT_EQ(transports.size(), config.num_servers);
  return RunThroughScheduler(std::move(transports));
}

TEST(ExchangePartitionChain, FullChainByteIdenticalAcrossBackends) {
  RunOutcome in_process = RunChain(ChainMode::kInProcess, 0);
  RunOutcome partitioned = RunChain(ChainMode::kPartitionedLocal, 2);
  RunOutcome partitioned_tcp = RunChain(ChainMode::kPartitionedTcp, 2);

  for (const RunOutcome* other : {&partitioned, &partitioned_tcp}) {
    EXPECT_EQ(in_process.responses, other->responses);
    EXPECT_EQ(in_process.singles, other->singles);
    EXPECT_EQ(in_process.pairs, other->pairs);
    EXPECT_EQ(in_process.exchanged, other->exchanged);
    EXPECT_EQ(in_process.dial_drop_sizes, other->dial_drop_sizes);
    EXPECT_EQ(in_process.dial_drops, other->dial_drops);
  }
}

// --- Wire: headers -----------------------------------------------------------

TEST(ExchangeWire, ConversationHeaderRoundTrip) {
  ExchangeConversationHeader header{3, 7};
  auto parsed = ParseExchangeConversationHeader(EncodeExchangeConversationHeader(header));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->shard_index, 3u);
  EXPECT_EQ(parsed->num_shards, 7u);
}

TEST(ExchangeWire, ConversationHeaderRejectsMalformedMaps) {
  // Shard index out of range — a prefix map naming a shard that cannot exist.
  EXPECT_FALSE(
      ParseExchangeConversationHeader(EncodeExchangeConversationHeader({7, 7})).has_value());
  EXPECT_FALSE(
      ParseExchangeConversationHeader(EncodeExchangeConversationHeader({0, 0})).has_value());
  // Truncation and trailing bytes.
  util::Bytes good = EncodeExchangeConversationHeader({0, 2});
  EXPECT_FALSE(
      ParseExchangeConversationHeader(util::ByteSpan(good).first(good.size() - 1)).has_value());
  good.push_back(0);
  EXPECT_FALSE(ParseExchangeConversationHeader(good).has_value());
}

TEST(ExchangeWire, DialingHeaderRejectsMalformedMaps) {
  EXPECT_TRUE(ParseExchangeDialingHeader(EncodeExchangeDialingHeader({1, 2, 5})).has_value());
  EXPECT_FALSE(ParseExchangeDialingHeader(EncodeExchangeDialingHeader({2, 2, 5})).has_value());
  EXPECT_FALSE(ParseExchangeDialingHeader(EncodeExchangeDialingHeader({0, 0, 5})).has_value());
  EXPECT_FALSE(ParseExchangeDialingHeader(EncodeExchangeDialingHeader({0, 2, 0})).has_value());
  EXPECT_FALSE(ParseExchangeDialingHeader({}).has_value());
}

TEST(ExchangeWire, FuzzedHeadersNeverCrash) {
  util::Xoshiro256Rng rng(55);
  for (int i = 0; i < 2000; ++i) {
    util::Bytes data = rng.RandomBytes(rng.UniformUint64(20));
    (void)ParseExchangeConversationHeader(data);
    (void)ParseExchangeDialingHeader(data);
  }
}

// --- Wire: chunked exchange messages ----------------------------------------

std::vector<util::Bytes> SerializedExchangeItems(size_t count, uint64_t seed) {
  std::vector<util::Bytes> items;
  util::Xoshiro256Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    wire::ExchangeRequest request;
    rng.Fill(request.dead_drop);
    rng.Fill(request.envelope);
    items.push_back(request.Serialize());
  }
  return items;
}

TEST(ExchangeWire, PartitionMessageStreamsAcrossChunks) {
  auto items = SerializedExchangeItems(64, 5);  // ~17 KB across 2 KB chunks
  util::Bytes header = EncodeExchangeConversationHeader({1, 4});
  auto frames =
      EncodeBatchChunks(net::FrameType::kExchangeConversation, 12, header, items, 2048);
  ASSERT_TRUE(frames.has_value());
  ASSERT_GT(frames->size(), 4u);

  BatchAssembler assembler;
  BatchAssembler::Status status = BatchAssembler::Status::kNeedMore;
  for (const auto& frame : *frames) {
    status = assembler.Consume(frame);
    if (status != BatchAssembler::Status::kNeedMore) {
      break;
    }
  }
  ASSERT_EQ(status, BatchAssembler::Status::kDone) << assembler.error();
  BatchMessage message = assembler.Take();
  EXPECT_EQ(message.op, net::FrameType::kExchangeConversation);
  EXPECT_EQ(message.round, 12u);
  EXPECT_EQ(message.header, header);
  EXPECT_EQ(message.items, items);
  EXPECT_LE(assembler.peak_frame_bytes(), 2048u);
}

TEST(ExchangeWire, MidChunkTruncationRejected) {
  auto items = SerializedExchangeItems(16, 6);
  auto frames = EncodeBatchChunks(net::FrameType::kExchangeConversation, 1,
                                  EncodeExchangeConversationHeader({0, 2}), items, 2048);
  ASSERT_TRUE(frames.has_value());
  ASSERT_GT(frames->size(), 1u);
  // Cut a continuation chunk mid-item: the assembler must fail cleanly, never
  // decode a partial exchange request.
  net::Frame cut = (*frames)[1];
  cut.payload.resize(cut.payload.size() / 2);
  BatchAssembler assembler;
  ASSERT_EQ(assembler.Consume((*frames)[0]), BatchAssembler::Status::kNeedMore);
  EXPECT_EQ(assembler.Consume(cut), BatchAssembler::Status::kError);
}

TEST(ExchangeWire, DroppedFinalChunkStaysIncomplete) {
  auto items = SerializedExchangeItems(16, 7);
  auto frames = EncodeBatchChunks(net::FrameType::kExchangeDialing, 2,
                                  EncodeExchangeDialingHeader({0, 2, 4}), items, 2048);
  ASSERT_TRUE(frames.has_value());
  ASSERT_GT(frames->size(), 2u);
  BatchAssembler assembler;
  BatchAssembler::Status status = BatchAssembler::Status::kNeedMore;
  for (size_t i = 0; i + 1 < frames->size(); ++i) {
    status = assembler.Consume((*frames)[i]);
  }
  EXPECT_EQ(status, BatchAssembler::Status::kNeedMore);
}

TEST(ExchangeWire, OversizedReassemblyHitsCeiling) {
  auto items = SerializedExchangeItems(64, 8);  // ~17 KB of items
  auto frames = EncodeBatchChunks(net::FrameType::kExchangeConversation, 3,
                                  EncodeExchangeConversationHeader({0, 1}), items, 2048);
  ASSERT_TRUE(frames.has_value());
  BatchAssembler assembler(/*max_message_bytes=*/8 * 1024);
  BatchAssembler::Status status = BatchAssembler::Status::kNeedMore;
  for (const auto& frame : *frames) {
    status = assembler.Consume(frame);
    if (status != BatchAssembler::Status::kNeedMore) {
      break;
    }
  }
  EXPECT_EQ(status, BatchAssembler::Status::kError);
}

// --- Daemon robustness -------------------------------------------------------

TEST(ExchangedDaemonRobustness, RejectsMismatchedPartitionMapAndKeepsServing) {
  auto group = ExchangePartitionGroup::Start(2);
  ASSERT_NE(group, nullptr);

  {
    auto raw = net::TcpConnection::Connect("127.0.0.1", group->port(0));
    ASSERT_TRUE(raw.has_value());
    // A well-formed message routed under the wrong map: shard 1 of 3, sent to
    // the daemon serving shard 0 of 2.
    auto items = SerializedExchangeItems(2, 9);
    ASSERT_TRUE(SendBatchMessage(*raw, net::FrameType::kExchangeConversation, 5,
                                 EncodeExchangeConversationHeader({1, 3}), items));
    auto reply = raw->RecvFrame();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, net::FrameType::kHopError);

    // Garbage chunk content on the same connection: reported, not fatal.
    ASSERT_TRUE(raw->SendFrame(
        net::Frame{net::FrameType::kExchangeConversation, 6, {0xff, 0xff, 0xff}}));
    reply = raw->RecvFrame();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, net::FrameType::kHopError);
  }

  // The daemon accepts a fresh connection and serves a real exchange.
  auto router = ExchangeRouter::Connect(group->RouterConfig());
  ASSERT_NE(router, nullptr);
  auto requests = MixedExchangeRequests(404);
  deaddrop::ExchangeOutcome outcome = router->ExchangeConversation(8, requests);
  EXPECT_EQ(outcome.results.size(), requests.size());
  EXPECT_GT(outcome.messages_exchanged, 0u);
}

TEST(ExchangedDaemonRobustness, RejectsRequestOutsidePartition) {
  auto group = ExchangePartitionGroup::Start(2);
  ASSERT_NE(group, nullptr);
  auto raw = net::TcpConnection::Connect("127.0.0.1", group->port(0));
  ASSERT_TRUE(raw.has_value());

  // An ID whose prefix belongs to shard 1, shipped to shard 0 under a correct
  // map: the daemon must refuse rather than host a drop it does not own.
  wire::ExchangeRequest request;
  request.dead_drop.fill(0xff);
  request.envelope.fill(0xaa);
  ASSERT_TRUE(SendBatchMessage(*raw, net::FrameType::kExchangeConversation, 5,
                               EncodeExchangeConversationHeader({0, 2}),
                               {request.Serialize()}));
  auto reply = raw->RecvFrame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, net::FrameType::kHopError);
}

}  // namespace
}  // namespace vuvuzela::transport
