// Failure injection: adversarial and broken inputs pushed through the whole
// system. §2.3 allows clients to misbehave arbitrarily — servers must stay
// available and honest clients must stay correct and private.

#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "src/conversation/protocol.h"
#include "src/crypto/onion.h"
#include "src/dialing/protocol.h"
#include "src/engine/round_scheduler.h"
#include "src/mixnet/chain.h"
#include "src/transport/hop_chain.h"
#include "src/util/random.h"

namespace vuvuzela::mixnet {
namespace {

using conversation::Session;

ChainConfig Config(size_t servers, double mu = 2.0) {
  ChainConfig config;
  config.num_servers = servers;
  config.conversation_noise = {.params = {mu, 1.0}, .deterministic = true};
  config.dialing_noise = {.params = {mu, 1.0}, .deterministic = true};
  config.parallel = false;
  return config;
}

class FailureInjectionTest : public ::testing::Test {
 protected:
  util::Xoshiro256Rng rng_{4242};
  Chain chain_ = Chain::Create(Config(3), rng_);
  crypto::X25519KeyPair alice_ = crypto::X25519KeyPair::Generate(rng_);
  crypto::X25519KeyPair bob_ = crypto::X25519KeyPair::Generate(rng_);

  util::Bytes WrapExchange(uint64_t round, const wire::ExchangeRequest& request) {
    return crypto::OnionWrap(chain_.public_keys(), round, request.Serialize(), rng_).data;
  }
};

TEST_F(FailureInjectionTest, AllGarbageRoundCompletes) {
  std::vector<util::Bytes> onions;
  for (int i = 0; i < 10; ++i) {
    onions.push_back(rng_.RandomBytes(416));
  }
  auto result = chain_.RunConversationRound(1, std::move(onions));
  EXPECT_EQ(result.responses.size(), 10u);
  EXPECT_EQ(result.stats.forward[0].requests_dropped, 10u);
}

TEST_F(FailureInjectionTest, ZeroLengthAndOversizedOnions) {
  Session session = Session::Derive(alice_, bob_.public_key);
  auto good = WrapExchange(2, conversation::BuildExchangeRequest(session, 2, {}));
  std::vector<util::Bytes> onions;
  onions.push_back({});                      // empty
  onions.push_back(rng_.RandomBytes(10));    // far too short
  onions.push_back(rng_.RandomBytes(4096));  // far too long
  onions.push_back(good);
  auto result = chain_.RunConversationRound(2, std::move(onions));
  ASSERT_EQ(result.responses.size(), 4u);
  // The honest request still echoes back correctly.
  auto keys = crypto::OnionWrap(chain_.public_keys(), 99, util::Bytes(1), rng_);
  (void)keys;
}

TEST_F(FailureInjectionTest, ValidOnionGarbagePayloadDroppedAtLastHop) {
  // An onion that unwraps fine at every hop but contains a payload that is
  // not a well-formed ExchangeRequest.
  util::Bytes junk = rng_.RandomBytes(wire::kExchangeRequestSize - 5);
  auto onion = crypto::OnionWrap(chain_.public_keys(), 3, junk, rng_);
  auto result = chain_.RunConversationRound(3, {onion.data});
  EXPECT_EQ(result.stats.forward.back().requests_dropped, 1u);
  EXPECT_EQ(result.responses.size(), 1u);
}

TEST_F(FailureInjectionTest, ReplayedOnionWithinRoundHitsSameDropTwice) {
  // An adversary replaying Alice's onion in the same round creates a crowded
  // drop; Alice's exchange must still complete with one of the copies and
  // the server must not crash.
  Session alice_session = Session::Derive(alice_, bob_.public_key);
  Session bob_session = Session::Derive(bob_, alice_.public_key);
  auto alice_onion =
      WrapExchange(4, conversation::BuildExchangeRequest(alice_session, 4, {}));
  auto bob_onion = WrapExchange(4, conversation::BuildExchangeRequest(bob_session, 4, {}));

  auto result = chain_.RunConversationRound(4, {alice_onion, alice_onion, bob_onion});
  EXPECT_EQ(result.responses.size(), 3u);
  EXPECT_EQ(result.histogram.crowded, 1u);  // 3 accesses on one drop
}

TEST_F(FailureInjectionTest, ReplayAcrossRoundsRejected) {
  // Round binding in the onion nonce: a request recorded in round 5 and
  // replayed in round 6 fails at the first hop.
  Session session = Session::Derive(alice_, bob_.public_key);
  auto onion = WrapExchange(5, conversation::BuildExchangeRequest(session, 5, {}));
  auto result5 = chain_.RunConversationRound(5, {onion});
  EXPECT_EQ(result5.stats.forward[0].requests_dropped, 0u);

  auto result6 = chain_.RunConversationRound(6, {onion});
  EXPECT_EQ(result6.stats.forward[0].requests_dropped, 1u);
}

TEST_F(FailureInjectionTest, AdversarialDialIndexesCannotFaultServer) {
  dialing::RoundConfig dial_config{.num_real_drops = 2};
  std::vector<util::Bytes> onions;
  for (uint32_t index : {0u, 1u, 2u, 3u, 1000000u, UINT32_MAX}) {
    wire::DialRequest request;
    request.dead_drop_index = index;  // includes far out-of-range values
    rng_.Fill(request.invitation);
    onions.push_back(
        crypto::OnionWrap(chain_.public_keys(), 7, request.Serialize(), rng_).data);
  }
  auto result = chain_.RunDialingRound(7, std::move(onions), dial_config.total_drops());
  // All deposits landed (mod total_drops); none crashed the table.
  uint64_t total = 0;
  for (uint64_t size : result.table.DropSizes()) {
    total += size;
  }
  // 6 deposits + deterministic noise 2 per drop per server (3 drops × 3
  // servers... only servers add noise: 2 per drop per non-last × 2 + last).
  EXPECT_GE(total, 6u);
}

TEST_F(FailureInjectionTest, EmptyRoundStillProducesNoise) {
  // Even with zero clients connected, the servers exchange a full noise
  // round — the cover traffic does not depend on load (§6.4).
  auto result = chain_.RunConversationRound(8, {});
  EXPECT_EQ(result.responses.size(), 0u);
  // Each non-last server adds 2 singles + 1 pair = 4 requests.
  EXPECT_EQ(result.stats.forward.back().requests_in, 8u);
  EXPECT_GT(result.histogram.singles + result.histogram.pairs, 0u);
}

TEST_F(FailureInjectionTest, MismatchedResponseCountThrows) {
  auto onion = WrapExchange(9, conversation::BuildFakeExchangeRequest(alice_, 9, rng_));
  auto out = chain_.server(0).ForwardConversation(9, {onion});
  std::vector<util::Bytes> bad(out.size() + 1, util::Bytes(16));
  EXPECT_THROW(chain_.server(0).BackwardConversation(9, std::move(bad)),
               std::invalid_argument);
}

TEST_F(FailureInjectionTest, TamperedResponsesDegradeToGarbage) {
  // A malicious middle server that flips bits in responses cannot forge
  // plaintexts: the client sees undecryptable garbage, never corrupted text.
  Session alice_session = Session::Derive(alice_, bob_.public_key);
  Session bob_session = Session::Derive(bob_, alice_.public_key);
  util::Bytes text = {'s', 'e', 'c', 'r', 'e', 't'};
  auto alice_request = conversation::BuildExchangeRequest(alice_session, 10, text);
  auto alice_wrapped =
      crypto::OnionWrap(chain_.public_keys(), 10, alice_request.Serialize(), rng_);
  auto bob_request = conversation::BuildExchangeRequest(bob_session, 10, {});
  auto bob_wrapped =
      crypto::OnionWrap(chain_.public_keys(), 10, bob_request.Serialize(), rng_);

  auto result = chain_.RunConversationRound(10, {alice_wrapped.data, bob_wrapped.data});

  // Untampered: Bob reads Alice's text.
  auto clean = crypto::OnionOpenResponse(bob_wrapped.layer_keys, 10, result.responses[1]);
  ASSERT_TRUE(clean.has_value());
  wire::Envelope envelope;
  ASSERT_EQ(clean->size(), envelope.size());
  std::copy(clean->begin(), clean->end(), envelope.begin());
  auto opened = conversation::OpenExchangeResponse(bob_session, 10, envelope);
  EXPECT_EQ(opened.kind, conversation::ResponseKind::kPartnerMessage);
  EXPECT_EQ(opened.text, text);

  // Tampered anywhere: the response fails authentication outright.
  util::Bytes tampered = result.responses[1];
  tampered[tampered.size() / 2] ^= 0x80;
  EXPECT_FALSE(crypto::OnionOpenResponse(bob_wrapped.layer_keys, 10, tampered).has_value());
}

TEST(FailureInjectionChains, TwoServerChainToleratesHalfGarbage) {
  util::Xoshiro256Rng rng(77);
  Chain chain = Chain::Create(Config(2, 3.0), rng);
  auto user = crypto::X25519KeyPair::Generate(rng);
  std::vector<util::Bytes> onions;
  for (int i = 0; i < 8; ++i) {
    if (i % 2 == 0) {
      auto request = conversation::BuildFakeExchangeRequest(user, 1, rng);
      onions.push_back(
          crypto::OnionWrap(chain.public_keys(), 1, request.Serialize(), rng).data);
    } else {
      onions.push_back(rng.RandomBytes(368));
    }
  }
  auto result = chain.RunConversationRound(1, std::move(onions));
  EXPECT_EQ(result.responses.size(), 8u);
  EXPECT_EQ(result.stats.forward[0].requests_dropped, 4u);
}

// --- Exchange-partition failures --------------------------------------------
//
// A dead vuvuzela-exchanged shard server must cost exactly the rounds whose
// dead drops route to it: rounds confined to surviving shards keep
// completing, and the failure surfaces through the round future like a dead
// hop (the PR 2 accounting).

class ExchangePartitionFailure : public ::testing::Test {
 protected:
  // A 1-server chain (the last hop alone) with a 2-way partitioned exchange:
  // the first ID byte selects the shard (0x00.. → shard 0, 0x80.. → shard 1).
  void SetUp() override {
    config_.num_servers = 1;
    config_.conversation_noise = {.params = {1.0, 1.0}, .deterministic = true};
    config_.dialing_noise = {.params = {1.0, 1.0}, .deterministic = true};
    config_.parallel = false;
    keys_ = transport::DeriveChainKeys(9, 1);
    server_ = transport::BuildMixServer(config_, keys_, 0);
  }

  util::Bytes Onion(uint64_t round, uint8_t id_first_byte) {
    wire::ExchangeRequest request;
    rng_.Fill(request.dead_drop);
    rng_.Fill(request.envelope);
    request.dead_drop[0] = id_first_byte;
    return crypto::OnionWrap(keys_.public_keys, round, request.Serialize(), rng_).data;
  }

  ChainConfig config_;
  transport::ChainKeyMaterial keys_;
  std::unique_ptr<MixServer> server_;
  util::Xoshiro256Rng rng_{515};
};

TEST_F(ExchangePartitionFailure, KilledPartitionAbandonsOnlyRoundsTouchingItsShard) {
  auto group = transport::ExchangePartitionGroup::Start(2);
  ASSERT_NE(group, nullptr);
  auto router = transport::ExchangeRouter::Connect(group->RouterConfig(/*recv_timeout_ms=*/500));
  ASSERT_NE(router, nullptr);
  server_->SetExchangeBackend(router.get());

  std::vector<std::unique_ptr<transport::HopTransport>> hops;
  hops.push_back(std::make_unique<transport::LocalTransport>(*server_));
  engine::RoundScheduler scheduler(std::move(hops), {.max_in_flight = 1});

  // Round 1 spans both shards and completes.
  auto round1 = scheduler.SubmitConversation(1, {Onion(1, 0x00), Onion(1, 0xff)});
  EXPECT_EQ(round1.get().responses.size(), 2u);

  // Kill shard 0's server mid-deployment.
  group->Kill(0);

  // Rounds confined to shard 1 still complete...
  auto round2 = scheduler.SubmitConversation(2, {Onion(2, 0xff), Onion(2, 0xcc)});
  EXPECT_EQ(round2.get().responses.size(), 2u);

  // ...a round routing to the dead shard is abandoned (its future throws)...
  auto round3 = scheduler.SubmitConversation(3, {Onion(3, 0x00), Onion(3, 0xff)});
  EXPECT_THROW(round3.get(), transport::HopError);

  // ...and later shard-1-only rounds are unaffected by the earlier failure.
  auto round4 = scheduler.SubmitConversation(4, {Onion(4, 0x80)});
  EXPECT_EQ(round4.get().responses.size(), 1u);

  scheduler.Drain();
  EXPECT_EQ(scheduler.stats().rounds_failed, 1u);
  EXPECT_EQ(scheduler.stats().conversation_rounds_completed, 3u);
}

TEST_F(ExchangePartitionFailure, BlackHolePartitionTimesOutMidRoundWhileOthersComplete) {
  // Shard 0 is a black hole — it accepts the slice and never answers — which
  // models a shard server dying *mid-round* rather than refusing connections.
  auto black_hole_listener = net::TcpListener::Listen(0);
  ASSERT_TRUE(black_hole_listener.has_value());
  std::thread black_hole([&] {
    while (auto conn = black_hole_listener->Accept()) {
      while (conn->RecvFrame()) {
      }
    }
  });
  transport::ExchangedConfig shard1_config;
  shard1_config.shard_index = 1;
  shard1_config.num_shards = 2;
  auto shard1 = transport::ExchangedDaemon::Create(shard1_config);
  ASSERT_NE(shard1, nullptr);
  std::thread shard1_thread([&] { shard1->Serve(); });

  transport::ExchangeRouterConfig router_config;
  router_config.partitions = {{"127.0.0.1", black_hole_listener->port()},
                              {"127.0.0.1", shard1->port()}};
  router_config.recv_timeout_ms = 300;
  auto router = transport::ExchangeRouter::Connect(router_config);
  ASSERT_NE(router, nullptr);
  server_->SetExchangeBackend(router.get());

  std::vector<std::unique_ptr<transport::HopTransport>> hops;
  hops.push_back(std::make_unique<transport::LocalTransport>(*server_));
  engine::RoundScheduler scheduler(std::move(hops), {.max_in_flight = 2});

  // Two rounds in flight: round 1 touches the black hole, round 2 does not.
  auto round1 = scheduler.SubmitConversation(1, {Onion(1, 0x00), Onion(1, 0xff)});
  auto round2 = scheduler.SubmitConversation(2, {Onion(2, 0xff)});
  EXPECT_THROW(round1.get(), transport::HopTimeoutError);
  EXPECT_EQ(round2.get().responses.size(), 1u);

  scheduler.Drain();
  EXPECT_EQ(scheduler.stats().rounds_failed, 1u);
  EXPECT_EQ(scheduler.stats().conversation_rounds_completed, 1u);

  black_hole_listener->Shutdown();
  black_hole.join();
  shard1->Stop();
  shard1_thread.join();
}

}  // namespace
}  // namespace vuvuzela::mixnet
