// Failure injection: adversarial and broken inputs pushed through the whole
// system. §2.3 allows clients to misbehave arbitrarily — servers must stay
// available and honest clients must stay correct and private.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>

#include "src/conversation/protocol.h"
#include "src/crypto/onion.h"
#include "src/crypto/sha256.h"
#include "src/sim/workload.h"
#include "src/dialing/protocol.h"
#include "src/engine/round_scheduler.h"
#include "src/mixnet/chain.h"
#include "src/transport/coord_daemon.h"
#include "src/transport/hop_chain.h"
#include "src/util/random.h"

namespace vuvuzela::mixnet {
namespace {

using conversation::Session;

ChainConfig Config(size_t servers, double mu = 2.0) {
  ChainConfig config;
  config.num_servers = servers;
  config.conversation_noise = {.params = {mu, 1.0}, .deterministic = true};
  config.dialing_noise = {.params = {mu, 1.0}, .deterministic = true};
  config.parallel = false;
  return config;
}

class FailureInjectionTest : public ::testing::Test {
 protected:
  util::Xoshiro256Rng rng_{4242};
  Chain chain_ = Chain::Create(Config(3), rng_);
  crypto::X25519KeyPair alice_ = crypto::X25519KeyPair::Generate(rng_);
  crypto::X25519KeyPair bob_ = crypto::X25519KeyPair::Generate(rng_);

  util::Bytes WrapExchange(uint64_t round, const wire::ExchangeRequest& request) {
    return crypto::OnionWrap(chain_.public_keys(), round, request.Serialize(), rng_).data;
  }
};

TEST_F(FailureInjectionTest, AllGarbageRoundCompletes) {
  std::vector<util::Bytes> onions;
  for (int i = 0; i < 10; ++i) {
    onions.push_back(rng_.RandomBytes(416));
  }
  auto result = chain_.RunConversationRound(1, std::move(onions));
  EXPECT_EQ(result.responses.size(), 10u);
  EXPECT_EQ(result.stats.forward[0].requests_dropped, 10u);
}

TEST_F(FailureInjectionTest, ZeroLengthAndOversizedOnions) {
  Session session = Session::Derive(alice_, bob_.public_key);
  auto good = WrapExchange(2, conversation::BuildExchangeRequest(session, 2, {}));
  std::vector<util::Bytes> onions;
  onions.push_back({});                      // empty
  onions.push_back(rng_.RandomBytes(10));    // far too short
  onions.push_back(rng_.RandomBytes(4096));  // far too long
  onions.push_back(good);
  auto result = chain_.RunConversationRound(2, std::move(onions));
  ASSERT_EQ(result.responses.size(), 4u);
  // The honest request still echoes back correctly.
  auto keys = crypto::OnionWrap(chain_.public_keys(), 99, util::Bytes(1), rng_);
  (void)keys;
}

TEST_F(FailureInjectionTest, ValidOnionGarbagePayloadDroppedAtLastHop) {
  // An onion that unwraps fine at every hop but contains a payload that is
  // not a well-formed ExchangeRequest.
  util::Bytes junk = rng_.RandomBytes(wire::kExchangeRequestSize - 5);
  auto onion = crypto::OnionWrap(chain_.public_keys(), 3, junk, rng_);
  auto result = chain_.RunConversationRound(3, {onion.data});
  EXPECT_EQ(result.stats.forward.back().requests_dropped, 1u);
  EXPECT_EQ(result.responses.size(), 1u);
}

TEST_F(FailureInjectionTest, ReplayedOnionWithinRoundHitsSameDropTwice) {
  // An adversary replaying Alice's onion in the same round creates a crowded
  // drop; Alice's exchange must still complete with one of the copies and
  // the server must not crash.
  Session alice_session = Session::Derive(alice_, bob_.public_key);
  Session bob_session = Session::Derive(bob_, alice_.public_key);
  auto alice_onion =
      WrapExchange(4, conversation::BuildExchangeRequest(alice_session, 4, {}));
  auto bob_onion = WrapExchange(4, conversation::BuildExchangeRequest(bob_session, 4, {}));

  auto result = chain_.RunConversationRound(4, {alice_onion, alice_onion, bob_onion});
  EXPECT_EQ(result.responses.size(), 3u);
  EXPECT_EQ(result.histogram.crowded, 1u);  // 3 accesses on one drop
}

TEST_F(FailureInjectionTest, ReplayAcrossRoundsRejected) {
  // Round binding in the onion nonce: a request recorded in round 5 and
  // replayed in round 6 fails at the first hop.
  Session session = Session::Derive(alice_, bob_.public_key);
  auto onion = WrapExchange(5, conversation::BuildExchangeRequest(session, 5, {}));
  auto result5 = chain_.RunConversationRound(5, {onion});
  EXPECT_EQ(result5.stats.forward[0].requests_dropped, 0u);

  auto result6 = chain_.RunConversationRound(6, {onion});
  EXPECT_EQ(result6.stats.forward[0].requests_dropped, 1u);
}

TEST_F(FailureInjectionTest, AdversarialDialIndexesCannotFaultServer) {
  dialing::RoundConfig dial_config{.num_real_drops = 2};
  std::vector<util::Bytes> onions;
  for (uint32_t index : {0u, 1u, 2u, 3u, 1000000u, UINT32_MAX}) {
    wire::DialRequest request;
    request.dead_drop_index = index;  // includes far out-of-range values
    rng_.Fill(request.invitation);
    onions.push_back(
        crypto::OnionWrap(chain_.public_keys(), 7, request.Serialize(), rng_).data);
  }
  auto result = chain_.RunDialingRound(7, std::move(onions), dial_config.total_drops());
  // All deposits landed (mod total_drops); none crashed the table.
  uint64_t total = 0;
  for (uint64_t size : result.table.DropSizes()) {
    total += size;
  }
  // 6 deposits + deterministic noise 2 per drop per server (3 drops × 3
  // servers... only servers add noise: 2 per drop per non-last × 2 + last).
  EXPECT_GE(total, 6u);
}

TEST_F(FailureInjectionTest, EmptyRoundStillProducesNoise) {
  // Even with zero clients connected, the servers exchange a full noise
  // round — the cover traffic does not depend on load (§6.4).
  auto result = chain_.RunConversationRound(8, {});
  EXPECT_EQ(result.responses.size(), 0u);
  // Each non-last server adds 2 singles + 1 pair = 4 requests.
  EXPECT_EQ(result.stats.forward.back().requests_in, 8u);
  EXPECT_GT(result.histogram.singles + result.histogram.pairs, 0u);
}

TEST_F(FailureInjectionTest, MismatchedResponseCountThrows) {
  auto onion = WrapExchange(9, conversation::BuildFakeExchangeRequest(alice_, 9, rng_));
  auto out = chain_.server(0).ForwardConversation(9, {onion});
  std::vector<util::Bytes> bad(out.size() + 1, util::Bytes(16));
  EXPECT_THROW(chain_.server(0).BackwardConversation(9, std::move(bad)),
               std::invalid_argument);
}

TEST_F(FailureInjectionTest, TamperedResponsesDegradeToGarbage) {
  // A malicious middle server that flips bits in responses cannot forge
  // plaintexts: the client sees undecryptable garbage, never corrupted text.
  Session alice_session = Session::Derive(alice_, bob_.public_key);
  Session bob_session = Session::Derive(bob_, alice_.public_key);
  util::Bytes text = {'s', 'e', 'c', 'r', 'e', 't'};
  auto alice_request = conversation::BuildExchangeRequest(alice_session, 10, text);
  auto alice_wrapped =
      crypto::OnionWrap(chain_.public_keys(), 10, alice_request.Serialize(), rng_);
  auto bob_request = conversation::BuildExchangeRequest(bob_session, 10, {});
  auto bob_wrapped =
      crypto::OnionWrap(chain_.public_keys(), 10, bob_request.Serialize(), rng_);

  auto result = chain_.RunConversationRound(10, {alice_wrapped.data, bob_wrapped.data});

  // Untampered: Bob reads Alice's text.
  auto clean = crypto::OnionOpenResponse(bob_wrapped.layer_keys, 10, result.responses[1]);
  ASSERT_TRUE(clean.has_value());
  wire::Envelope envelope;
  ASSERT_EQ(clean->size(), envelope.size());
  std::copy(clean->begin(), clean->end(), envelope.begin());
  auto opened = conversation::OpenExchangeResponse(bob_session, 10, envelope);
  EXPECT_EQ(opened.kind, conversation::ResponseKind::kPartnerMessage);
  EXPECT_EQ(opened.text, text);

  // Tampered anywhere: the response fails authentication outright.
  util::Bytes tampered = result.responses[1];
  tampered[tampered.size() / 2] ^= 0x80;
  EXPECT_FALSE(crypto::OnionOpenResponse(bob_wrapped.layer_keys, 10, tampered).has_value());
}

TEST(FailureInjectionChains, TwoServerChainToleratesHalfGarbage) {
  util::Xoshiro256Rng rng(77);
  Chain chain = Chain::Create(Config(2, 3.0), rng);
  auto user = crypto::X25519KeyPair::Generate(rng);
  std::vector<util::Bytes> onions;
  for (int i = 0; i < 8; ++i) {
    if (i % 2 == 0) {
      auto request = conversation::BuildFakeExchangeRequest(user, 1, rng);
      onions.push_back(
          crypto::OnionWrap(chain.public_keys(), 1, request.Serialize(), rng).data);
    } else {
      onions.push_back(rng.RandomBytes(368));
    }
  }
  auto result = chain.RunConversationRound(1, std::move(onions));
  EXPECT_EQ(result.responses.size(), 8u);
  EXPECT_EQ(result.stats.forward[0].requests_dropped, 4u);
}

// --- Exchange-partition failures --------------------------------------------
//
// A dead vuvuzela-exchanged shard server must cost exactly the rounds whose
// dead drops route to it: rounds confined to surviving shards keep
// completing, and the failure surfaces through the round future like a dead
// hop (the PR 2 accounting).

class ExchangePartitionFailure : public ::testing::Test {
 protected:
  // A 1-server chain (the last hop alone) with a 2-way partitioned exchange:
  // the first ID byte selects the shard (0x00.. → shard 0, 0x80.. → shard 1).
  void SetUp() override {
    config_.num_servers = 1;
    config_.conversation_noise = {.params = {1.0, 1.0}, .deterministic = true};
    config_.dialing_noise = {.params = {1.0, 1.0}, .deterministic = true};
    config_.parallel = false;
    keys_ = transport::DeriveChainKeys(9, 1);
    server_ = transport::BuildMixServer(config_, keys_, 0);
  }

  util::Bytes Onion(uint64_t round, uint8_t id_first_byte) {
    wire::ExchangeRequest request;
    rng_.Fill(request.dead_drop);
    rng_.Fill(request.envelope);
    request.dead_drop[0] = id_first_byte;
    return crypto::OnionWrap(keys_.public_keys, round, request.Serialize(), rng_).data;
  }

  ChainConfig config_;
  transport::ChainKeyMaterial keys_;
  std::unique_ptr<MixServer> server_;
  util::Xoshiro256Rng rng_{515};
};

TEST_F(ExchangePartitionFailure, KilledPartitionAbandonsOnlyRoundsTouchingItsShard) {
  auto group = transport::ExchangePartitionGroup::Start(2);
  ASSERT_NE(group, nullptr);
  auto router = transport::ExchangeRouter::Connect(group->RouterConfig(/*recv_timeout_ms=*/500));
  ASSERT_NE(router, nullptr);
  server_->SetExchangeBackend(router.get());

  std::vector<std::unique_ptr<transport::HopTransport>> hops;
  hops.push_back(std::make_unique<transport::LocalTransport>(*server_));
  engine::RoundScheduler scheduler(std::move(hops), {.max_in_flight = 1});

  // Round 1 spans both shards and completes.
  auto round1 = scheduler.SubmitConversation(1, {Onion(1, 0x00), Onion(1, 0xff)});
  EXPECT_EQ(round1.get().responses.size(), 2u);

  // Kill shard 0's server mid-deployment.
  group->Kill(0);

  // Rounds confined to shard 1 still complete...
  auto round2 = scheduler.SubmitConversation(2, {Onion(2, 0xff), Onion(2, 0xcc)});
  EXPECT_EQ(round2.get().responses.size(), 2u);

  // ...a round routing to the dead shard is abandoned (its future throws)...
  auto round3 = scheduler.SubmitConversation(3, {Onion(3, 0x00), Onion(3, 0xff)});
  EXPECT_THROW(round3.get(), transport::HopError);

  // ...and later shard-1-only rounds are unaffected by the earlier failure.
  auto round4 = scheduler.SubmitConversation(4, {Onion(4, 0x80)});
  EXPECT_EQ(round4.get().responses.size(), 1u);

  scheduler.Drain();
  EXPECT_EQ(scheduler.stats().rounds_failed, 1u);
  EXPECT_EQ(scheduler.stats().conversation_rounds_completed, 3u);
}

TEST_F(ExchangePartitionFailure, BlackHolePartitionTimesOutMidRoundWhileOthersComplete) {
  // Shard 0 is a black hole — it accepts the slice and never answers — which
  // models a shard server dying *mid-round* rather than refusing connections.
  auto black_hole_listener = net::TcpListener::Listen(0);
  ASSERT_TRUE(black_hole_listener.has_value());
  std::thread black_hole([&] {
    while (auto conn = black_hole_listener->Accept()) {
      while (conn->RecvFrame()) {
      }
    }
  });
  transport::ExchangedConfig shard1_config;
  shard1_config.shard_index = 1;
  shard1_config.num_shards = 2;
  auto shard1 = transport::ExchangedDaemon::Create(shard1_config);
  ASSERT_NE(shard1, nullptr);
  std::thread shard1_thread([&] { shard1->Serve(); });

  transport::ExchangeRouterConfig router_config;
  router_config.partitions = {{"127.0.0.1", black_hole_listener->port()},
                              {"127.0.0.1", shard1->port()}};
  router_config.recv_timeout_ms = 300;
  auto router = transport::ExchangeRouter::Connect(router_config);
  ASSERT_NE(router, nullptr);
  server_->SetExchangeBackend(router.get());

  std::vector<std::unique_ptr<transport::HopTransport>> hops;
  hops.push_back(std::make_unique<transport::LocalTransport>(*server_));
  engine::RoundScheduler scheduler(std::move(hops), {.max_in_flight = 2});

  // Two rounds in flight: round 1 touches the black hole, round 2 does not.
  auto round1 = scheduler.SubmitConversation(1, {Onion(1, 0x00), Onion(1, 0xff)});
  auto round2 = scheduler.SubmitConversation(2, {Onion(2, 0xff)});
  EXPECT_THROW(round1.get(), transport::HopTimeoutError);
  EXPECT_EQ(round2.get().responses.size(), 1u);

  scheduler.Drain();
  EXPECT_EQ(scheduler.stats().rounds_failed, 1u);
  EXPECT_EQ(scheduler.stats().conversation_rounds_completed, 1u);

  black_hole_listener->Shutdown();
  black_hole.join();
  shard1->Stop();
  shard1_thread.join();
}

// --- Crash recovery ----------------------------------------------------------
//
// The fault-tolerant round lifecycle: a hop (or exchange shard) killed and
// restarted mid-schedule must cost latency, never messages — recovered
// rounds' outputs byte-identical to an uninterrupted run — and a hop that
// never comes back must still degrade to the old bounded-abandonment
// behavior. Idempotent hop replay (the daemons' reply cache) is what makes
// post-reconnect re-sends safe; it gets its own direct test.

class CrashRecovery : public ::testing::Test {
 protected:
  static mixnet::ChainConfig RecoveryChainConfig() {
    mixnet::ChainConfig config;
    config.num_servers = 3;
    config.conversation_noise = {.params = {2.0, 1.0}, .deterministic = true};
    config.dialing_noise = {.params = {2.0, 1.0}, .deterministic = true};
    config.parallel = false;
    return config;
  }

  static transport::CoordDaemonConfig CoordConfig(const transport::LoopbackChain& chain,
                                                  uint64_t total_rounds) {
    transport::CoordDaemonConfig config;
    for (size_t i = 0; i < chain.size(); ++i) {
      config.hops.push_back({"127.0.0.1", chain.port(i)});
    }
    config.scheduler.max_in_flight = 3;
    config.schedule.conversation_rounds_per_dialing_round = 10;
    config.total_rounds = total_rounds;
    config.admission_window_seconds = 0.02;  // paces synthetic rounds
    config.hop_timeout_ms = 2000;
    config.connect_timeout_ms = 500;
    config.synthetic_users = 8;
    config.key_seed = kRecoverySeed;
    config.workload_seed = 77;
    config.record_responses = true;
    // Generous budget so a ~200 ms outage can never exhaust it; the
    // never-returns test pins the bounded end of the spectrum.
    config.max_round_attempts = 8;
    config.reconnect.max_call_attempts = 3;
    config.reconnect.backoff_initial_ms = 20;
    config.reconnect.backoff_max_ms = 100;
    config.supervisor_interval_ms = 50;
    return config;
  }

  // Uninterrupted reference: same seed, same schedule, no failures. An
  // empty result (reported via ADD_FAILURE) means the deployment could not
  // start — callers' equality assertions then fail cleanly.
  static transport::CoordDaemonResult ReferenceRun(uint64_t total_rounds,
                                                   size_t exchange_partitions = 0) {
    std::unique_ptr<transport::ExchangePartitionGroup> group;
    transport::ExchangeRouterConfig exchange;
    if (exchange_partitions > 0) {
      group = transport::ExchangePartitionGroup::Start(exchange_partitions);
      if (group == nullptr) {
        ADD_FAILURE() << "reference exchange partitions failed to start";
        return {};
      }
      exchange = group->RouterConfig();
    }
    auto chain = transport::LoopbackChain::Start(RecoveryChainConfig(), kRecoverySeed,
                                                 transport::kDefaultChunkPayload, exchange);
    if (chain == nullptr) {
      ADD_FAILURE() << "reference chain failed to start";
      return {};
    }
    transport::CoordinatorDaemon coordinator(CoordConfig(*chain, total_rounds));
    EXPECT_TRUE(coordinator.Start());
    return coordinator.Run();
  }

  static constexpr uint64_t kRecoverySeed = 0xfa117;
};

// Idempotent hop replay, directly: the same forward pass sent twice (the
// coordinator cannot know whether a lost connection ate the reply or the
// request) returns byte-identical bytes from the daemon's cache without
// running the mix twice, and the round's backward pass still works after.
TEST_F(CrashRecovery, ReplayedForwardPassIsServedOnceAndByteIdentical) {
  auto chain = transport::LoopbackChain::Start(RecoveryChainConfig(), kRecoverySeed);
  ASSERT_NE(chain, nullptr);
  transport::TcpTransportConfig transport_config;
  transport_config.port = chain->port(0);
  auto hop = transport::TcpTransport::Connect(transport_config);
  ASSERT_NE(hop, nullptr);

  util::Xoshiro256Rng rng(7);
  auto keys = transport::DeriveChainKeys(kRecoverySeed, 3);
  std::vector<util::Bytes> batch;
  for (int i = 0; i < 4; ++i) {
    wire::ExchangeRequest request;
    rng.Fill(request.dead_drop);
    rng.Fill(request.envelope);
    batch.push_back(crypto::OnionWrap(keys.public_keys, 1, request.Serialize(), rng).data);
  }

  auto first = hop->ForwardConversation(1, batch, nullptr);
  EXPECT_EQ(chain->daemon(0)->replay_hits(), 0u);
  auto replayed = hop->ForwardConversation(1, batch, nullptr);
  EXPECT_EQ(chain->daemon(0)->replay_hits(), 1u);
  EXPECT_EQ(first, replayed);

  // The replay did not consume the round state: the backward pass works, and
  // replaying *it* (state-consuming at the server!) is also idempotent.
  size_t response_size = wire::kEnvelopeSize + crypto::kOnionResponseLayerOverhead;
  std::vector<util::Bytes> responses;
  for (size_t i = 0; i < first.size(); ++i) {
    responses.push_back(rng.RandomBytes(response_size));
  }
  auto back1 = hop->BackwardConversation(1, responses, nullptr);
  auto back2 = hop->BackwardConversation(1, responses, nullptr);
  EXPECT_EQ(chain->daemon(0)->replay_hits(), 2u);
  EXPECT_EQ(back1, back2);
  EXPECT_EQ(back1.size(), batch.size());

  // Different input under a replayed round/op is NOT served from the cache:
  // the daemon reprocesses (and here fails, because the state was consumed).
  std::vector<util::Bytes> tampered = responses;
  tampered[0][0] ^= 1;
  EXPECT_THROW(hop->BackwardConversation(1, tampered, nullptr), transport::HopRemoteError);
}

// A hop killed and restarted mid-schedule: zero lost onions, zero abandoned
// rounds, and every recovered round's response batch byte-identical to the
// uninterrupted reference run.
TEST_F(CrashRecovery, HopdKilledAndRestartedMidScheduleIsLossless) {
  constexpr uint64_t kRounds = 60;
  transport::CoordDaemonResult reference = ReferenceRun(kRounds);
  ASSERT_EQ(reference.rounds_abandoned, 0u);

  auto chain = transport::LoopbackChain::Start(RecoveryChainConfig(), kRecoverySeed);
  ASSERT_NE(chain, nullptr);
  transport::CoordDaemonConfig config = CoordConfig(*chain, kRounds);
  // A short in-call reconnect window (~2 × 50 ms) against a long outage
  // forces failures through the round-level re-submission path instead of
  // being silently bridged inside one RPC.
  config.reconnect.max_call_attempts = 2;
  config.reconnect.backoff_max_ms = 50;
  transport::CoordinatorDaemon coordinator(std::move(config));
  ASSERT_TRUE(coordinator.Start());

  transport::CoordDaemonResult result;
  std::thread runner([&] { result = coordinator.Run(); });

  // Kill the middle hop once the schedule is visibly moving, hold it down
  // long enough that in-call reconnects alone cannot bridge the gap (the
  // round-level re-submission path must engage), then restart it.
  while (coordinator.lifecycle().counters().completed < 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  chain->Kill(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  ASSERT_TRUE(chain->Restart(1));
  runner.join();

  EXPECT_EQ(result.rounds_abandoned, 0u);
  EXPECT_GT(result.rounds_retried, 0u);  // recovery actually engaged
  EXPECT_EQ(result.conversation_rounds_completed, reference.conversation_rounds_completed);
  EXPECT_EQ(result.dialing_rounds_completed, reference.dialing_rounds_completed);
  EXPECT_EQ(result.messages_exchanged, reference.messages_exchanged);
  // Byte-identity, round by round: recovery left no fingerprint in the data.
  ASSERT_EQ(result.responses.size(), reference.responses.size());
  for (const auto& [round, responses] : reference.responses) {
    auto it = result.responses.find(round);
    ASSERT_NE(it, result.responses.end()) << "round " << round << " missing";
    EXPECT_EQ(it->second, responses) << "round " << round << " diverged";
  }
}

// Same discipline for an exchange shard server: vuvuzela-exchanged is
// stateless across rounds, so kill + restart costs only the rounds in
// flight on it — which the coordinator re-submits.
TEST_F(CrashRecovery, ExchangedKilledAndRestartedMidScheduleIsLossless) {
  constexpr uint64_t kRounds = 30;
  constexpr size_t kPartitions = 2;
  transport::CoordDaemonResult reference = ReferenceRun(kRounds, kPartitions);
  ASSERT_EQ(reference.rounds_abandoned, 0u);

  auto group = transport::ExchangePartitionGroup::Start(kPartitions);
  ASSERT_NE(group, nullptr);
  auto chain = transport::LoopbackChain::Start(RecoveryChainConfig(), kRecoverySeed,
                                               transport::kDefaultChunkPayload,
                                               group->RouterConfig());
  ASSERT_NE(chain, nullptr);
  transport::CoordinatorDaemon coordinator(CoordConfig(*chain, kRounds));
  ASSERT_TRUE(coordinator.Start());

  transport::CoordDaemonResult result;
  std::thread runner([&] { result = coordinator.Run(); });

  while (coordinator.lifecycle().counters().completed < 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  group->Kill(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_TRUE(group->Restart(0));
  runner.join();

  EXPECT_EQ(result.rounds_abandoned, 0u);
  EXPECT_EQ(result.conversation_rounds_completed, reference.conversation_rounds_completed);
  EXPECT_EQ(result.messages_exchanged, reference.messages_exchanged);
  ASSERT_EQ(result.responses.size(), reference.responses.size());
  for (const auto& [round, responses] : reference.responses) {
    EXPECT_EQ(result.responses.at(round), responses) << "round " << round << " diverged";
  }
}

// The bounded end of the spectrum: a hop that never comes back exhausts the
// per-round retry budget and the deployment degrades to the pre-recovery
// accounting — every round abandoned, the coordinator terminates.
TEST_F(CrashRecovery, HopThatNeverReturnsDegradesToBoundedAbandonment) {
  constexpr uint64_t kRounds = 4;
  auto chain = transport::LoopbackChain::Start(RecoveryChainConfig(), kRecoverySeed);
  ASSERT_NE(chain, nullptr);

  transport::CoordDaemonConfig config = CoordConfig(*chain, kRounds);
  config.record_responses = false;
  config.hop_timeout_ms = 200;
  config.max_round_attempts = 2;  // one retry each, then abandon
  transport::CoordinatorDaemon coordinator(std::move(config));
  ASSERT_TRUE(coordinator.Start());
  chain->Kill(1);  // dies before any round and never restarts

  transport::CoordDaemonResult result = coordinator.Run();
  EXPECT_EQ(result.rounds_abandoned, kRounds);
  EXPECT_EQ(result.conversation_rounds_completed, 0u);
  EXPECT_EQ(result.rounds_retried, kRounds * 1u);
  EXPECT_EQ(coordinator.lifecycle().counters().abandoned, kRounds);
}

// --- Noise-plan determinism across crash/restart (adversarial privacy
// suite). The ε/δ accounting assumes every server adds its planned cover
// traffic every round — including rounds served by a hop that was killed and
// rebuilt from the key ceremony. The noise-sensitive observables of a
// conversation round are the access histogram (user pairs plus every
// server's singles/pairs plan) and the exchange count; digesting them per
// round gives a noise-plan fingerprint two runs can be compared by.
// Both noise backends are pinned: deterministic plans (⌈µ⌉, §8.1) and
// sampled plans, whose per-round RNG derivation from the ceremony seed must
// make a restarted hop redraw the identical plan.
TEST_F(CrashRecovery, RestartedHopReproducesNoisePlanDigest) {
  constexpr uint64_t kRounds = 6;
  constexpr uint64_t kCrashAfter = 3;
  constexpr uint64_t kUsers = 8;

  for (bool deterministic : {true, false}) {
    SCOPED_TRACE(deterministic ? "deterministic" : "sampled");
    mixnet::ChainConfig chain_config = RecoveryChainConfig();
    chain_config.conversation_noise = {.params = {6.0, 2.0}, .deterministic = deterministic};
    chain_config.dialing_noise = {.params = {6.0, 2.0}, .deterministic = deterministic};

    auto keys = transport::DeriveChainKeys(kRecoverySeed, chain_config.num_servers);
    std::vector<std::vector<util::Bytes>> batches(kRounds + 1);
    for (uint64_t round = 1; round <= kRounds; ++round) {
      sim::WorkloadConfig workload{
          .num_users = kUsers, .pairing_fraction = 1.0, .seed = 300 + round, .parallel = false};
      batches[round] = sim::GenerateConversationWorkload(workload, keys.public_keys, round);
    }

    // Runs rounds [from, to] over fresh transports (a restarted hop's old
    // connection is gone, as after a real crash) and appends each round's
    // noise-sensitive observables to the digest.
    auto run_rounds = [&](transport::LoopbackChain& chain, uint64_t from, uint64_t to,
                          crypto::Sha256& digest,
                          std::vector<std::vector<util::Bytes>>& responses) {
      auto transports = chain.ConnectTransports();
      ASSERT_EQ(transports.size(), chain_config.num_servers);
      engine::RoundScheduler scheduler(std::move(transports), {.max_in_flight = 1});
      for (uint64_t round = from; round <= to; ++round) {
        Chain::ConversationResult result =
            scheduler.SubmitConversation(round, batches[round]).get();
        uint64_t observables[4] = {round, result.histogram.singles, result.histogram.pairs,
                                   result.messages_exchanged};
        digest.Update(util::ByteSpan(reinterpret_cast<const uint8_t*>(observables),
                                     sizeof observables));
        responses.push_back(std::move(result.responses));
      }
      scheduler.Drain();
    };

    // Uninterrupted reference.
    auto reference_chain = transport::LoopbackChain::Start(chain_config, kRecoverySeed);
    ASSERT_NE(reference_chain, nullptr);
    crypto::Sha256 reference_digest;
    std::vector<std::vector<util::Bytes>> reference_responses;
    run_rounds(*reference_chain, 1, kRounds, reference_digest, reference_responses);

    // Same deployment, middle hop killed and rebuilt mid-schedule.
    auto chain = transport::LoopbackChain::Start(chain_config, kRecoverySeed);
    ASSERT_NE(chain, nullptr);
    crypto::Sha256 crashed_digest;
    std::vector<std::vector<util::Bytes>> crashed_responses;
    run_rounds(*chain, 1, kCrashAfter, crashed_digest, crashed_responses);
    chain->Kill(1);
    ASSERT_TRUE(chain->Restart(1));
    run_rounds(*chain, kCrashAfter + 1, kRounds, crashed_digest, crashed_responses);

    EXPECT_EQ(reference_digest.Finish(), crashed_digest.Finish());
    EXPECT_EQ(reference_responses, crashed_responses);
  }
}

}  // namespace
}  // namespace vuvuzela::mixnet
