// Fuzz-style robustness: every boundary that accepts bytes from the network
// (parsers, frame decoders, AEAD/onion openers, the chain itself) is fed
// thousands of random and bit-flipped inputs. The invariant everywhere is
// fail-soft: return nullopt / drop the request — never crash, never read out
// of bounds, never accept garbage as valid.

#include <gtest/gtest.h>

#include "src/client/reliable.h"
#include "src/crypto/aead.h"
#include "src/crypto/box.h"
#include "src/crypto/onion.h"
#include "src/net/frame.h"
#include "src/util/random.h"
#include "src/wire/messages.h"
#include "src/wire/serde.h"

namespace vuvuzela {
namespace {

// Random byte strings of assorted lengths, biased toward interesting sizes.
util::Bytes RandomBlob(util::Rng& rng, size_t round) {
  static constexpr size_t kInteresting[] = {0,   1,   4,   12,  13,  15,  16,  17,
                                            79,  80,  81,  255, 256, 271, 272, 273,
                                            304, 415, 416, 417, 1024};
  size_t n;
  if (round % 3 == 0) {
    n = kInteresting[rng.UniformUint64(std::size(kInteresting))];
  } else {
    n = rng.UniformUint64(600);
  }
  return rng.RandomBytes(n);
}

TEST(Fuzz, WireParsersNeverCrash) {
  util::Xoshiro256Rng rng(0xf022);
  for (size_t i = 0; i < 5000; ++i) {
    util::Bytes blob = RandomBlob(rng, i);
    (void)wire::ExchangeRequest::Parse(blob);
    (void)wire::DialRequest::Parse(blob);
    (void)wire::RoundAnnouncement::Parse(blob);
    (void)net::DecodeFrame(blob);
    (void)net::DecodeBatch(blob);
  }
}

TEST(Fuzz, ReaderNeverOverruns) {
  util::Xoshiro256Rng rng(0xf023);
  for (size_t i = 0; i < 2000; ++i) {
    util::Bytes blob = RandomBlob(rng, i);
    wire::Reader reader(blob);
    // Random sequence of reads; all must fail-soft after exhaustion.
    for (int op = 0; op < 12; ++op) {
      switch (rng.UniformUint64(6)) {
        case 0:
          (void)reader.U8();
          break;
        case 1:
          (void)reader.U16();
          break;
        case 2:
          (void)reader.U32();
          break;
        case 3:
          (void)reader.U64();
          break;
        case 4:
          (void)reader.Raw(rng.UniformUint64(64));
          break;
        default:
          (void)reader.Var();
          break;
      }
    }
  }
}

TEST(Fuzz, AeadOpenRejectsAllRandomInputs) {
  util::Xoshiro256Rng rng(0xf024);
  crypto::AeadKey key;
  rng.Fill(key);
  int accepted = 0;
  for (size_t i = 0; i < 2000; ++i) {
    util::Bytes blob = RandomBlob(rng, i);
    if (crypto::AeadOpen(key, crypto::NonceFromUint64(i), {}, blob)) {
      accepted++;
    }
  }
  EXPECT_EQ(accepted, 0);  // forging a Poly1305 tag by chance: p ≈ 2^-128
}

TEST(Fuzz, OnionUnwrapRejectsAllRandomInputs) {
  util::Xoshiro256Rng rng(0xf025);
  auto server = crypto::X25519KeyPair::Generate(rng);
  int accepted = 0;
  for (size_t i = 0; i < 1000; ++i) {
    util::Bytes blob = RandomBlob(rng, i);
    if (crypto::OnionUnwrapLayer(server.secret_key, i, blob)) {
      accepted++;
    }
  }
  EXPECT_EQ(accepted, 0);
}

TEST(Fuzz, SealedBoxOpenRejectsAllRandomInputs) {
  util::Xoshiro256Rng rng(0xf026);
  auto recipient = crypto::X25519KeyPair::Generate(rng);
  static constexpr uint8_t kCtx[] = "ctx";
  int accepted = 0;
  for (size_t i = 0; i < 1000; ++i) {
    util::Bytes blob = RandomBlob(rng, i);
    if (crypto::SealedBoxOpen(recipient, util::ByteSpan(kCtx, 3), blob)) {
      accepted++;
    }
  }
  EXPECT_EQ(accepted, 0);
}

TEST(Fuzz, ReliableChannelSurvivesGarbageFrames) {
  util::Xoshiro256Rng rng(0xf027);
  client::ReliableChannel channel;
  channel.QueueMessage(util::Bytes{'x'});
  for (size_t i = 0; i < 3000; ++i) {
    util::Bytes blob = RandomBlob(rng, i);
    (void)channel.HandleFrame(blob);
    // The channel must stay usable throughout.
    util::Bytes frame = channel.NextFrame();
    EXPECT_GE(frame.size(), client::kFrameHeaderSize);
  }
}

TEST(Fuzz, BitflippedValidStructuresRejectOrParse) {
  // Mutate valid serialized structures one bit at a time: parsers must
  // either reject or produce a structurally valid object — never crash.
  util::Xoshiro256Rng rng(0xf028);
  wire::ExchangeRequest request;
  rng.Fill(request.dead_drop);
  rng.Fill(request.envelope);
  util::Bytes valid = request.Serialize();
  for (size_t bit = 0; bit < valid.size() * 8; bit += 7) {
    util::Bytes mutated = valid;
    mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto parsed = wire::ExchangeRequest::Parse(mutated);
    ASSERT_TRUE(parsed.has_value());  // fixed-size body: parse always succeeds
  }

  net::Frame frame{net::FrameType::kBatch, 7, rng.RandomBytes(100)};
  util::Bytes encoded = net::EncodeFrame(frame);
  for (size_t bit = 0; bit < encoded.size() * 8; bit += 5) {
    util::Bytes mutated = encoded;
    mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    (void)net::DecodeFrame(mutated);  // reject or decode; never crash
  }
}

TEST(Fuzz, BatchDecoderHandlesNestedCorruption) {
  util::Xoshiro256Rng rng(0xf029);
  std::vector<util::Bytes> items;
  for (int i = 0; i < 5; ++i) {
    items.push_back(rng.RandomBytes(50));
  }
  util::Bytes encoded = net::EncodeBatch(items);
  for (size_t i = 0; i < 500; ++i) {
    util::Bytes mutated = encoded;
    size_t pos = rng.UniformUint64(mutated.size());
    mutated[pos] = static_cast<uint8_t>(rng.NextUint64());
    auto decoded = net::DecodeBatch(mutated);
    if (decoded) {
      // If it decodes, the items must account for exactly the payload bytes.
      size_t total = 4;
      for (const auto& item : *decoded) {
        total += 4 + item.size();
      }
      EXPECT_EQ(total, mutated.size());
    }
  }
}

}  // namespace
}  // namespace vuvuzela
