// End-to-end integration tests: the full system (clients, entry server,
// chain, dead drops, distributor) driven round by round through the
// scenarios the paper describes — dial, converse, go offline, resume.

#include <gtest/gtest.h>

#include <string>

#include "src/sim/deployment.h"

namespace vuvuzela::sim {
namespace {

util::Bytes Msg(const std::string& s) {
  return util::Bytes(s.begin(), s.end());
}

DeploymentConfig TestConfig(size_t servers = 3) {
  DeploymentConfig config;
  config.num_servers = servers;
  config.conversation_noise = {.params = {3.0, 1.0}, .deterministic = true};
  config.dialing_noise = {.params = {2.0, 1.0}, .deterministic = true};
  config.seed = 99;
  return config;
}

TEST(Integration, FullDialThenConverseFlow) {
  Deployment dep(TestConfig());
  size_t alice = dep.AddClient();
  size_t bob = dep.AddClient();
  size_t charlie = dep.AddClient();  // idle bystander

  // Alice dials Bob.
  dep.client(alice).Dial(dep.client(bob).public_key());
  dep.RunDialingRound();

  // Bob sees the incoming call and accepts.
  auto calls = dep.client(bob).TakeIncomingCalls();
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].caller, dep.client(alice).public_key());
  dep.client(bob).AcceptCall(calls[0].caller);

  // Charlie saw nothing.
  EXPECT_TRUE(dep.client(charlie).TakeIncomingCalls().empty());

  // They exchange messages over a few conversation rounds.
  dep.client(alice).SendMessage(dep.client(bob).public_key(), Msg("hi bob"));
  dep.client(bob).SendMessage(dep.client(alice).public_key(), Msg("hey alice"));
  dep.RunConversationRound();

  auto bob_msgs = dep.client(bob).TakeReceivedMessages();
  ASSERT_EQ(bob_msgs.size(), 1u);
  EXPECT_EQ(bob_msgs[0].payload, Msg("hi bob"));
  EXPECT_EQ(bob_msgs[0].from, dep.client(alice).public_key());

  auto alice_msgs = dep.client(alice).TakeReceivedMessages();
  ASSERT_EQ(alice_msgs.size(), 1u);
  EXPECT_EQ(alice_msgs[0].payload, Msg("hey alice"));

  EXPECT_TRUE(dep.client(charlie).TakeReceivedMessages().empty());
}

TEST(Integration, MultiRoundConversationQueues) {
  Deployment dep(TestConfig());
  size_t alice = dep.AddClient();
  size_t bob = dep.AddClient();
  dep.client(alice).Dial(dep.client(bob).public_key());
  dep.RunDialingRound();
  dep.client(bob).AcceptCall(dep.client(bob).TakeIncomingCalls()[0].caller);

  // Queue three messages; stop-and-wait delivers one per round once the
  // pipeline is primed.
  for (int i = 1; i <= 3; ++i) {
    dep.client(alice).SendMessage(dep.client(bob).public_key(), Msg("m" + std::to_string(i)));
  }
  std::vector<util::Bytes> got;
  for (int round = 0; round < 6 && got.size() < 3; ++round) {
    dep.RunConversationRound();
    for (auto& m : dep.client(bob).TakeReceivedMessages()) {
      got.push_back(m.payload);
    }
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], Msg("m1"));
  EXPECT_EQ(got[1], Msg("m2"));
  EXPECT_EQ(got[2], Msg("m3"));
}

TEST(Integration, LongMessageReassemblesInOrder) {
  Deployment dep(TestConfig());
  size_t alice = dep.AddClient();
  size_t bob = dep.AddClient();
  dep.client(alice).Dial(dep.client(bob).public_key());
  dep.RunDialingRound();
  dep.client(bob).AcceptCall(dep.client(bob).TakeIncomingCalls()[0].caller);

  // 600 bytes: three chunks across three rounds.
  util::Bytes big(600);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i);
  }
  dep.client(alice).SendMessage(dep.client(bob).public_key(), big);

  util::Bytes reassembled;
  for (int round = 0; round < 8 && reassembled.size() < big.size(); ++round) {
    dep.RunConversationRound();
    for (auto& m : dep.client(bob).TakeReceivedMessages()) {
      util::Append(reassembled, m.payload);
    }
  }
  EXPECT_EQ(reassembled, big);
}

TEST(Integration, BothSidesDialingStillWorks) {
  // Alice and Bob dial each other simultaneously; both preemptively open the
  // conversation and messaging just works.
  Deployment dep(TestConfig());
  size_t alice = dep.AddClient();
  size_t bob = dep.AddClient();
  dep.client(alice).Dial(dep.client(bob).public_key());
  dep.client(bob).Dial(dep.client(alice).public_key());
  dep.RunDialingRound();

  dep.client(alice).SendMessage(dep.client(bob).public_key(), Msg("ping"));
  dep.RunConversationRound();
  auto msgs = dep.client(bob).TakeReceivedMessages();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].payload, Msg("ping"));
}

TEST(Integration, ManyClientsPairwiseConversations) {
  Deployment dep(TestConfig());
  constexpr size_t kPairs = 5;
  std::vector<size_t> clients;
  for (size_t i = 0; i < 2 * kPairs; ++i) {
    clients.push_back(dep.AddClient());
  }
  for (size_t p = 0; p < kPairs; ++p) {
    size_t a = clients[2 * p], b = clients[2 * p + 1];
    dep.client(a).Dial(dep.client(b).public_key());
  }
  dep.RunDialingRound();
  for (size_t p = 0; p < kPairs; ++p) {
    size_t b = clients[2 * p + 1];
    auto calls = dep.client(b).TakeIncomingCalls();
    ASSERT_EQ(calls.size(), 1u) << "pair " << p;
    dep.client(b).AcceptCall(calls[0].caller);
  }
  for (size_t p = 0; p < kPairs; ++p) {
    size_t a = clients[2 * p], b = clients[2 * p + 1];
    dep.client(a).SendMessage(dep.client(b).public_key(), Msg("to" + std::to_string(p)));
  }
  dep.RunConversationRound();
  for (size_t p = 0; p < kPairs; ++p) {
    size_t b = clients[2 * p + 1];
    auto msgs = dep.client(b).TakeReceivedMessages();
    ASSERT_EQ(msgs.size(), 1u) << "pair " << p;
    EXPECT_EQ(msgs[0].payload, Msg("to" + std::to_string(p)));
  }
}

TEST(Integration, DialingIsRoundScoped) {
  // An invitation sent in round r is only visible in round r's drops
  // (ephemeral dead drops, §3.1). A recipient polling the next round sees
  // nothing.
  Deployment dep(TestConfig());
  size_t alice = dep.AddClient();
  size_t bob = dep.AddClient();
  dep.client(alice).Dial(dep.client(bob).public_key());
  dep.RunDialingRound();
  dep.client(bob).TakeIncomingCalls();  // drain round-1 call

  dep.RunDialingRound();  // nobody dials
  EXPECT_TRUE(dep.client(bob).TakeIncomingCalls().empty());
}

TEST(Integration, WorksWithSingleServerChain) {
  Deployment dep(TestConfig(/*servers=*/1));
  size_t alice = dep.AddClient();
  size_t bob = dep.AddClient();
  dep.client(alice).Dial(dep.client(bob).public_key());
  dep.RunDialingRound();
  auto calls = dep.client(bob).TakeIncomingCalls();
  ASSERT_EQ(calls.size(), 1u);
  dep.client(bob).AcceptCall(calls[0].caller);
  dep.client(alice).SendMessage(dep.client(bob).public_key(), Msg("one-hop"));
  dep.RunConversationRound();
  auto msgs = dep.client(bob).TakeReceivedMessages();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].payload, Msg("one-hop"));
}

TEST(Integration, MultipleConversationsPerRound) {
  // §9 "Multiple conversations": a client with 2 slots talks to two partners
  // in the same rounds.
  DeploymentConfig config = TestConfig();
  config.max_conversations_per_client = 2;
  Deployment dep(config);
  size_t alice = dep.AddClient();
  size_t bob = dep.AddClient();
  size_t carol = dep.AddClient();

  dep.client(alice).Dial(dep.client(bob).public_key());
  dep.client(alice).Dial(dep.client(carol).public_key());
  dep.RunDialingRound();
  dep.RunDialingRound();  // two dials need two dialing rounds (one per round)

  dep.client(bob).AcceptCall(dep.client(alice).public_key());
  dep.client(carol).AcceptCall(dep.client(alice).public_key());

  dep.client(alice).SendMessage(dep.client(bob).public_key(), Msg("to-bob"));
  dep.client(alice).SendMessage(dep.client(carol).public_key(), Msg("to-carol"));
  dep.RunConversationRound();

  auto bob_msgs = dep.client(bob).TakeReceivedMessages();
  ASSERT_EQ(bob_msgs.size(), 1u);
  EXPECT_EQ(bob_msgs[0].payload, Msg("to-bob"));
  auto carol_msgs = dep.client(carol).TakeReceivedMessages();
  ASSERT_EQ(carol_msgs.size(), 1u);
  EXPECT_EQ(carol_msgs[0].payload, Msg("to-carol"));
}

TEST(Integration, SampledNoiseRoundsStillDeliver) {
  DeploymentConfig config = TestConfig();
  config.conversation_noise.deterministic = false;
  config.dialing_noise.deterministic = false;
  Deployment dep(config);
  size_t alice = dep.AddClient();
  size_t bob = dep.AddClient();
  dep.client(alice).Dial(dep.client(bob).public_key());
  dep.RunDialingRound();
  dep.client(bob).AcceptCall(dep.client(bob).TakeIncomingCalls()[0].caller);
  dep.client(alice).SendMessage(dep.client(bob).public_key(), Msg("noisy"));
  dep.RunConversationRound();
  auto msgs = dep.client(bob).TakeReceivedMessages();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].payload, Msg("noisy"));
}

TEST(Integration, DistributorBandwidthAccounted) {
  Deployment dep(TestConfig());
  dep.AddClient();
  dep.AddClient();
  dep.RunDialingRound();
  // Both clients downloaded their drop (deterministic noise 2 per server × 3
  // servers in each of the 2 drops: real drop + no-op; only the real drop is
  // downloaded).
  EXPECT_EQ(dep.distributor().downloads_served(), 2u);
  EXPECT_GT(dep.distributor().bytes_served(), 0u);
}

}  // namespace
}  // namespace vuvuzela::sim
