// Mixnet tests: shuffle algebra, forward/backward alignment through the
// chain, noise injection accounting, and handling of malformed requests.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/conversation/protocol.h"
#include "src/crypto/onion.h"
#include "src/dialing/protocol.h"
#include "src/mixnet/chain.h"
#include "src/mixnet/shuffler.h"
#include "src/util/random.h"

namespace vuvuzela::mixnet {
namespace {

using conversation::Session;

TEST(Permutation, ApplyInverseIsIdentity) {
  util::Xoshiro256Rng rng(1);
  for (size_t n : {0u, 1u, 2u, 17u, 100u}) {
    Permutation perm = Permutation::Random(n, rng);
    std::vector<int> v(n);
    std::iota(v.begin(), v.end(), 0);
    std::vector<int> round_trip = perm.ApplyInverse(perm.Apply(v));
    EXPECT_EQ(round_trip, v) << "n=" << n;
  }
}

TEST(Permutation, IsActuallyAPermutation) {
  util::Xoshiro256Rng rng(2);
  Permutation perm = Permutation::Random(1000, rng);
  std::vector<uint32_t> sorted = perm.indices();
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(sorted[i], i);
  }
}

TEST(Permutation, UniformityChiSquared) {
  // Position histogram of element 0 over many draws should be flat.
  util::Xoshiro256Rng rng(3);
  constexpr size_t kN = 8;
  constexpr int kTrials = 8000;
  std::vector<int> position_counts(kN, 0);
  for (int t = 0; t < kTrials; ++t) {
    Permutation perm = Permutation::Random(kN, rng);
    for (size_t k = 0; k < kN; ++k) {
      if (perm.indices()[k] == 0) {
        position_counts[k]++;
      }
    }
  }
  double expected = static_cast<double>(kTrials) / kN;
  double chi2 = 0;
  for (int c : position_counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 7 degrees of freedom: chi2 < 24.3 at p=0.001.
  EXPECT_LT(chi2, 24.3);
}

TEST(Permutation, IdentityKeepsOrder) {
  Permutation perm = Permutation::Identity(5);
  std::vector<int> v = {5, 4, 3, 2, 1};
  EXPECT_EQ(perm.Apply(v), v);
}

// --- Chain fixtures --------------------------------------------------------

struct TestUser {
  crypto::X25519KeyPair keys;
  crypto::WrappedOnion onion;  // last round's onion (for response decryption)
};

ChainConfig SmallChainConfig(size_t servers, double mu = 4.0) {
  ChainConfig config;
  config.num_servers = servers;
  config.conversation_noise = {.params = {mu, 2.0}, .deterministic = true};
  config.dialing_noise = {.params = {mu, 2.0}, .deterministic = true};
  config.parallel = false;  // deterministic single-thread processing in tests
  return config;
}

// Builds the onion for one exchange request.
crypto::WrappedOnion WrapExchange(const Chain& chain, uint64_t round,
                                  const wire::ExchangeRequest& request, util::Rng& rng) {
  return crypto::OnionWrap(chain.public_keys(), round, request.Serialize(), rng);
}

class ChainConversationTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ChainConversationTest, TwoUsersExchangeThroughChain) {
  size_t num_servers = GetParam();
  util::Xoshiro256Rng rng(100 + num_servers);
  Chain chain = Chain::Create(SmallChainConfig(num_servers), rng);

  auto alice = crypto::X25519KeyPair::Generate(rng);
  auto bob = crypto::X25519KeyPair::Generate(rng);
  Session alice_session = Session::Derive(alice, bob.public_key);
  Session bob_session = Session::Derive(bob, alice.public_key);

  uint64_t round = 9;
  const char* alice_text = "hello bob";
  const char* bob_text = "hi alice!";
  auto alice_req = conversation::BuildExchangeRequest(
      alice_session, round,
      util::ByteSpan(reinterpret_cast<const uint8_t*>(alice_text), strlen(alice_text)));
  auto bob_req = conversation::BuildExchangeRequest(
      bob_session, round,
      util::ByteSpan(reinterpret_cast<const uint8_t*>(bob_text), strlen(bob_text)));

  crypto::WrappedOnion alice_onion = WrapExchange(chain, round, alice_req, rng);
  crypto::WrappedOnion bob_onion = WrapExchange(chain, round, bob_req, rng);

  auto result = chain.RunConversationRound(round, {alice_onion.data, bob_onion.data});
  ASSERT_EQ(result.responses.size(), 2u);
  // Noise pairs exchange with each other and are indistinguishable from real
  // pairs at the last server — exactly how noise masks m2 (§4.2). With µ=4
  // deterministic, each non-last server adds 4 singles + 2 pairs.
  uint64_t noise_servers = num_servers - 1;
  EXPECT_EQ(result.histogram.pairs, 1 + noise_servers * 2);
  EXPECT_EQ(result.histogram.singles, noise_servers * 4);
  EXPECT_EQ(result.messages_exchanged, 2 + noise_servers * 4);
  uint64_t per_server = 4 + 2 * 2;  // µ=4 singles + 2 pairs
  EXPECT_EQ(result.stats.forward.back().requests_in, 2 + noise_servers * per_server);

  // Alice opens her response through the onion layers.
  auto alice_resp = crypto::OnionOpenResponse(alice_onion.layer_keys, round, result.responses[0]);
  ASSERT_TRUE(alice_resp.has_value());
  wire::Envelope env;
  ASSERT_EQ(alice_resp->size(), env.size());
  std::copy(alice_resp->begin(), alice_resp->end(), env.begin());
  auto opened = conversation::OpenExchangeResponse(alice_session, round, env);
  EXPECT_EQ(opened.kind, conversation::ResponseKind::kPartnerMessage);
  EXPECT_EQ(std::string(opened.text.begin(), opened.text.end()), bob_text);

  // And Bob gets Alice's message.
  auto bob_resp = crypto::OnionOpenResponse(bob_onion.layer_keys, round, result.responses[1]);
  ASSERT_TRUE(bob_resp.has_value());
  std::copy(bob_resp->begin(), bob_resp->end(), env.begin());
  auto bob_opened = conversation::OpenExchangeResponse(bob_session, round, env);
  EXPECT_EQ(bob_opened.kind, conversation::ResponseKind::kPartnerMessage);
  EXPECT_EQ(std::string(bob_opened.text.begin(), bob_opened.text.end()), alice_text);
}

INSTANTIATE_TEST_SUITE_P(ChainLengths, ChainConversationTest, ::testing::Values(1, 2, 3, 5));

TEST(Chain, IdleUserGetsEcho) {
  util::Xoshiro256Rng rng(200);
  Chain chain = Chain::Create(SmallChainConfig(3), rng);
  auto charlie = crypto::X25519KeyPair::Generate(rng);

  uint64_t round = 1;
  auto fake = conversation::BuildFakeExchangeRequest(charlie, round, rng);
  crypto::WrappedOnion onion = WrapExchange(chain, round, fake, rng);
  auto result = chain.RunConversationRound(round, {onion.data});

  auto resp = crypto::OnionOpenResponse(onion.layer_keys, round, result.responses[0]);
  ASSERT_TRUE(resp.has_value());
  // The envelope that comes back is Charlie's own (echo); he cannot even
  // decrypt it as a partner message since nobody holds the random partner key.
  // Only noise pairs (2 servers × 2 pairs × 2 messages) exchanged this round.
  EXPECT_EQ(result.messages_exchanged, 8u);
  EXPECT_EQ(result.histogram.pairs, 4u);
}

TEST(Chain, UnmatchedRealRequestEchoes) {
  // Alice talks to Bob, but Bob is offline this round: her envelope echoes
  // back and she learns the partner was absent.
  util::Xoshiro256Rng rng(201);
  Chain chain = Chain::Create(SmallChainConfig(2), rng);
  auto alice = crypto::X25519KeyPair::Generate(rng);
  auto bob = crypto::X25519KeyPair::Generate(rng);
  Session session = Session::Derive(alice, bob.public_key);

  uint64_t round = 3;
  auto req = conversation::BuildExchangeRequest(session, round, {});
  crypto::WrappedOnion onion = WrapExchange(chain, round, req, rng);
  auto result = chain.RunConversationRound(round, {onion.data});

  auto resp = crypto::OnionOpenResponse(onion.layer_keys, round, result.responses[0]);
  ASSERT_TRUE(resp.has_value());
  wire::Envelope env;
  std::copy(resp->begin(), resp->end(), env.begin());
  auto opened = conversation::OpenExchangeResponse(session, round, env);
  EXPECT_EQ(opened.kind, conversation::ResponseKind::kEcho);
}

TEST(Chain, MalformedOnionGetsGarbageResponseOfRightSize) {
  util::Xoshiro256Rng rng(202);
  Chain chain = Chain::Create(SmallChainConfig(3), rng);
  uint64_t round = 4;

  // A valid user plus one garbage request.
  auto alice = crypto::X25519KeyPair::Generate(rng);
  auto fake = conversation::BuildFakeExchangeRequest(alice, round, rng);
  crypto::WrappedOnion good = WrapExchange(chain, round, fake, rng);
  util::Bytes garbage = rng.RandomBytes(good.data.size());

  auto result = chain.RunConversationRound(round, {good.data, garbage});
  ASSERT_EQ(result.responses.size(), 2u);
  EXPECT_EQ(result.responses[0].size(), result.responses[1].size());
  EXPECT_EQ(result.stats.forward[0].requests_dropped, 1u);
  // The garbage response decrypts to nothing.
  EXPECT_FALSE(crypto::OnionOpenResponse(good.layer_keys, round, result.responses[1]).has_value());
}

TEST(Chain, NoiseCountsFollowConfig) {
  util::Xoshiro256Rng rng(203);
  ChainConfig config = SmallChainConfig(3, /*mu=*/10.0);
  Chain chain = Chain::Create(config, rng);
  uint64_t round = 5;

  auto alice = crypto::X25519KeyPair::Generate(rng);
  auto fake = conversation::BuildFakeExchangeRequest(alice, round, rng);
  crypto::WrappedOnion onion = WrapExchange(chain, round, fake, rng);
  auto result = chain.RunConversationRound(round, {onion.data});

  // µ=10 deterministic → each non-last server adds 10 singles + 5 pairs = 20.
  EXPECT_EQ(result.stats.forward[0].noise_requests_added, 20u);
  EXPECT_EQ(result.stats.forward[1].noise_requests_added, 20u);
  EXPECT_EQ(result.stats.forward[2].noise_requests_added, 0u);  // last server
  // Last server sees 1 + 2·20 requests.
  EXPECT_EQ(result.stats.forward[2].requests_in, 41u);
  // Noise histogram: each noise server contributes 10 singles + 5 pairs.
  EXPECT_EQ(result.histogram.singles, 1 + 20u);  // fake user's drop + noise singles
  EXPECT_EQ(result.histogram.pairs, 10u);
}

TEST(Chain, ResponsesSizedByChainLength) {
  for (size_t n : {1u, 2u, 4u}) {
    util::Xoshiro256Rng rng(204 + n);
    Chain chain = Chain::Create(SmallChainConfig(n), rng);
    uint64_t round = 6;
    auto kp = crypto::X25519KeyPair::Generate(rng);
    auto fake = conversation::BuildFakeExchangeRequest(kp, round, rng);
    crypto::WrappedOnion onion = WrapExchange(chain, round, fake, rng);

    EXPECT_EQ(onion.data.size(),
              crypto::OnionRequestSize(wire::kExchangeRequestSize, n));
    auto result = chain.RunConversationRound(round, {onion.data});
    EXPECT_EQ(result.responses[0].size(), crypto::OnionResponseSize(wire::kEnvelopeSize, n));
  }
}

TEST(Chain, DhOpsAccounting) {
  // Total forward DH ops = Σ_server (its input batch) + noise wrapping work.
  util::Xoshiro256Rng rng(205);
  Chain chain = Chain::Create(SmallChainConfig(3, /*mu=*/4.0), rng);
  uint64_t round = 7;
  auto kp = crypto::X25519KeyPair::Generate(rng);
  auto fake = conversation::BuildFakeExchangeRequest(kp, round, rng);
  crypto::WrappedOnion onion = WrapExchange(chain, round, fake, rng);
  auto result = chain.RunConversationRound(round, {onion.data});

  // Server 0: 1 unwrap + 8 noise × 2 remaining layers = 17.
  EXPECT_EQ(result.stats.forward[0].dh_ops, 1 + 8 * 2u);
  // Server 1: 9 in + 8 noise × 1 = 17.
  EXPECT_EQ(result.stats.forward[1].dh_ops, 9 + 8u);
  // Last: 17 unwraps.
  EXPECT_EQ(result.stats.forward[2].dh_ops, 17u);
}

TEST(Chain, DialingRoundDepositsInvitation) {
  util::Xoshiro256Rng rng(206);
  Chain chain = Chain::Create(SmallChainConfig(3, /*mu=*/2.0), rng);

  auto alice = crypto::X25519KeyPair::Generate(rng);
  auto bob = crypto::X25519KeyPair::Generate(rng);

  dialing::RoundConfig dial_config{.num_real_drops = 4};
  uint64_t round = 8;
  wire::DialRequest dial = dialing::BuildDialRequest(dial_config, alice.public_key,
                                                     bob.public_key, rng);
  crypto::WrappedOnion onion =
      crypto::OnionWrap(chain.public_keys(), round, dial.Serialize(), rng);

  auto result = chain.RunDialingRound(round, {onion.data}, dial_config.total_drops());

  uint32_t bob_drop = dialing::DropForRecipient(dial_config, bob.public_key);
  auto callers = dialing::ScanInvitations(bob, result.table.Drop(bob_drop));
  ASSERT_EQ(callers.size(), 1u);
  EXPECT_EQ(callers[0], alice.public_key);

  // All 5 drops (4 real + no-op) got deterministic noise 2 from each of the
  // 3 servers = 6, plus Alice's invitation in Bob's drop.
  std::vector<uint64_t> sizes = result.table.DropSizes();
  for (uint32_t d = 0; d < dial_config.total_drops(); ++d) {
    uint64_t expected = 6 + (d == bob_drop ? 1 : 0);
    EXPECT_EQ(sizes[d], expected) << "drop " << d;
  }
}

TEST(Chain, ForwardOnLastServerThrows) {
  util::Xoshiro256Rng rng(207);
  Chain chain = Chain::Create(SmallChainConfig(2), rng);
  EXPECT_THROW(chain.server(1).ForwardConversation(1, std::vector<util::Bytes>{}),
               std::logic_error);
  EXPECT_THROW(chain.server(0).ProcessConversationLastHop(1, std::vector<util::Bytes>{}),
               std::logic_error);
}

TEST(Chain, BackwardWithoutForwardThrows) {
  util::Xoshiro256Rng rng(208);
  Chain chain = Chain::Create(SmallChainConfig(2), rng);
  EXPECT_THROW(chain.server(0).BackwardConversation(99, std::vector<util::Bytes>{}),
               std::logic_error);
}

TEST(Chain, ParallelMatchesSerialSemantics) {
  // Same seed, parallel on/off: responses must decode identically (the
  // shuffle draws differ in neither case since rng use is serialized).
  util::Xoshiro256Rng rng(209);
  ChainConfig config = SmallChainConfig(3);
  config.parallel = true;
  Chain chain = Chain::Create(config, rng);

  auto alice = crypto::X25519KeyPair::Generate(rng);
  auto bob = crypto::X25519KeyPair::Generate(rng);
  Session alice_session = Session::Derive(alice, bob.public_key);
  Session bob_session = Session::Derive(bob, alice.public_key);
  uint64_t round = 10;
  auto a_req = conversation::BuildExchangeRequest(alice_session, round, {});
  auto b_req = conversation::BuildExchangeRequest(bob_session, round, {});
  crypto::WrappedOnion a_onion = WrapExchange(chain, round, a_req, rng);
  crypto::WrappedOnion b_onion = WrapExchange(chain, round, b_req, rng);

  auto result = chain.RunConversationRound(round, {a_onion.data, b_onion.data});
  auto resp = crypto::OnionOpenResponse(a_onion.layer_keys, round, result.responses[0]);
  ASSERT_TRUE(resp.has_value());
  wire::Envelope env;
  std::copy(resp->begin(), resp->end(), env.begin());
  EXPECT_EQ(conversation::OpenExchangeResponse(alice_session, round, env).kind,
            conversation::ResponseKind::kPartnerMessage);
}

}  // namespace
}  // namespace vuvuzela::mixnet
