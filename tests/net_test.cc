// Networking substrate tests: frame codec and TCP loopback transport.

#include <gtest/gtest.h>

#include <thread>

#include "src/net/frame.h"
#include "src/net/tcp.h"
#include "src/util/random.h"

namespace vuvuzela::net {
namespace {

TEST(Frame, RoundTrip) {
  Frame frame{FrameType::kConversationRequest, 42, {1, 2, 3}};
  auto decoded = DecodeFrame(EncodeFrame(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, FrameType::kConversationRequest);
  EXPECT_EQ(decoded->round, 42u);
  EXPECT_EQ(decoded->payload, (util::Bytes{1, 2, 3}));
}

TEST(Frame, EmptyPayload) {
  Frame frame{FrameType::kShutdown, 0, {}};
  auto decoded = DecodeFrame(EncodeFrame(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(Frame, RejectsBadType) {
  Frame frame{FrameType::kDialAck, 1, {9}};
  util::Bytes data = EncodeFrame(frame);
  data[0] = 200;
  EXPECT_FALSE(DecodeFrame(data).has_value());
}

TEST(Frame, RejectsTruncation) {
  Frame frame{FrameType::kDialAck, 1, {9, 9, 9}};
  util::Bytes data = EncodeFrame(frame);
  data.pop_back();
  EXPECT_FALSE(DecodeFrame(data).has_value());
  EXPECT_FALSE(DecodeFrame(util::Bytes(3)).has_value());
}

TEST(Frame, RejectsTrailingBytes) {
  Frame frame{FrameType::kDialAck, 1, {9}};
  util::Bytes data = EncodeFrame(frame);
  data.push_back(0);
  EXPECT_FALSE(DecodeFrame(data).has_value());
}

TEST(Frame, RejectsLyingLength) {
  Frame frame{FrameType::kDialAck, 1, {1, 2, 3, 4}};
  util::Bytes data = EncodeFrame(frame);
  data[9 + 3] = 0xff;  // length field claims far more than present
  EXPECT_FALSE(DecodeFrame(data).has_value());
}

TEST(Batch, RoundTrip) {
  std::vector<util::Bytes> items = {{1}, {2, 2}, {}, {3, 3, 3}};
  auto decoded = DecodeBatch(EncodeBatch(items));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, items);
}

TEST(Batch, EmptyList) {
  auto decoded = DecodeBatch(EncodeBatch({}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(Batch, RejectsCorruptCount) {
  std::vector<util::Bytes> items = {{1, 2}};
  util::Bytes data = EncodeBatch(items);
  data[3] = 200;  // count says 200 items, only 1 present
  EXPECT_FALSE(DecodeBatch(data).has_value());
}

TEST(Tcp, LoopbackFrameExchange) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.has_value());
  ASSERT_GT(listener->port(), 0);

  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.has_value());
    auto frame = conn->RecvFrame();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, FrameType::kConversationRequest);
    EXPECT_EQ(frame->round, 7u);
    Frame reply{FrameType::kConversationResponse, 7, frame->payload};
    EXPECT_TRUE(conn->SendFrame(reply));
  });

  auto client = TcpConnection::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  util::Xoshiro256Rng rng(1);
  Frame request{FrameType::kConversationRequest, 7, rng.RandomBytes(416)};
  ASSERT_TRUE(client->SendFrame(request));
  auto reply = client->RecvFrame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kConversationResponse);
  EXPECT_EQ(reply->payload, request.payload);
  server.join();
}

TEST(Tcp, LargeFrame) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.has_value());
  std::thread server([&] {
    auto conn = listener->Accept();
    auto frame = conn->RecvFrame();
    ASSERT_TRUE(frame.has_value());
    conn->SendFrame(*frame);
  });
  auto client = TcpConnection::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  util::Xoshiro256Rng rng(2);
  Frame big{FrameType::kBatch, 1, rng.RandomBytes(4 << 20)};  // 4 MB
  ASSERT_TRUE(client->SendFrame(big));
  auto echo = client->RecvFrame();
  ASSERT_TRUE(echo.has_value());
  EXPECT_EQ(echo->payload, big.payload);
  server.join();
}

TEST(Tcp, EofOnPeerClose) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.has_value());
  std::thread server([&] {
    auto conn = listener->Accept();
    conn->Close();
  });
  auto client = TcpConnection::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  EXPECT_FALSE(client->RecvFrame().has_value());
  server.join();
}

TEST(Tcp, ConnectToClosedPortFails) {
  // Find a port that is almost surely closed by binding and releasing it.
  auto listener = TcpListener::Listen(0);
  uint16_t port = listener->port();
  listener->Close();
  EXPECT_FALSE(TcpConnection::Connect("127.0.0.1", port).has_value());
}

TEST(Tcp, MultipleFramesOnOneConnection) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.has_value());
  std::thread server([&] {
    auto conn = listener->Accept();
    for (int i = 0; i < 5; ++i) {
      auto frame = conn->RecvFrame();
      ASSERT_TRUE(frame.has_value());
      conn->SendFrame(*frame);
    }
  });
  auto client = TcpConnection::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  for (uint64_t i = 0; i < 5; ++i) {
    Frame frame{FrameType::kDialRequest, i, {static_cast<uint8_t>(i)}};
    ASSERT_TRUE(client->SendFrame(frame));
    auto echo = client->RecvFrame();
    ASSERT_TRUE(echo.has_value());
    EXPECT_EQ(echo->round, i);
  }
  server.join();
}

}  // namespace
}  // namespace vuvuzela::net
