// Networking substrate tests: frame codec and TCP loopback transport.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <future>
#include <thread>

#include "src/net/frame.h"
#include "src/net/tcp.h"
#include "src/util/random.h"

namespace vuvuzela::net {
namespace {

TEST(Frame, RoundTrip) {
  Frame frame{FrameType::kConversationRequest, 42, {1, 2, 3}};
  auto decoded = DecodeFrame(EncodeFrame(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, FrameType::kConversationRequest);
  EXPECT_EQ(decoded->round, 42u);
  EXPECT_EQ(decoded->payload, (util::Bytes{1, 2, 3}));
}

TEST(Frame, EmptyPayload) {
  Frame frame{FrameType::kShutdown, 0, {}};
  auto decoded = DecodeFrame(EncodeFrame(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(Frame, RejectsBadType) {
  Frame frame{FrameType::kDialAck, 1, {9}};
  util::Bytes data = EncodeFrame(frame);
  data[0] = 200;
  EXPECT_FALSE(DecodeFrame(data).has_value());
}

TEST(Frame, RejectsTruncation) {
  Frame frame{FrameType::kDialAck, 1, {9, 9, 9}};
  util::Bytes data = EncodeFrame(frame);
  data.pop_back();
  EXPECT_FALSE(DecodeFrame(data).has_value());
  EXPECT_FALSE(DecodeFrame(util::Bytes(3)).has_value());
}

TEST(Frame, RejectsTrailingBytes) {
  Frame frame{FrameType::kDialAck, 1, {9}};
  util::Bytes data = EncodeFrame(frame);
  data.push_back(0);
  EXPECT_FALSE(DecodeFrame(data).has_value());
}

TEST(Frame, RejectsLyingLength) {
  Frame frame{FrameType::kDialAck, 1, {1, 2, 3, 4}};
  util::Bytes data = EncodeFrame(frame);
  data[9 + 3] = 0xff;  // length field claims far more than present
  EXPECT_FALSE(DecodeFrame(data).has_value());
}

TEST(Batch, RoundTrip) {
  std::vector<util::Bytes> items = {{1}, {2, 2}, {}, {3, 3, 3}};
  auto decoded = DecodeBatch(EncodeBatch(items));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, items);
}

TEST(Batch, EmptyList) {
  auto decoded = DecodeBatch(EncodeBatch({}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(Batch, RejectsCorruptCount) {
  std::vector<util::Bytes> items = {{1, 2}};
  util::Bytes data = EncodeBatch(items);
  data[3] = 200;  // count says 200 items, only 1 present
  EXPECT_FALSE(DecodeBatch(data).has_value());
}

TEST(Tcp, LoopbackFrameExchange) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.has_value());
  ASSERT_GT(listener->port(), 0);

  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.has_value());
    auto frame = conn->RecvFrame();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, FrameType::kConversationRequest);
    EXPECT_EQ(frame->round, 7u);
    Frame reply{FrameType::kConversationResponse, 7, frame->payload};
    EXPECT_TRUE(conn->SendFrame(reply));
  });

  auto client = TcpConnection::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  util::Xoshiro256Rng rng(1);
  Frame request{FrameType::kConversationRequest, 7, rng.RandomBytes(416)};
  ASSERT_TRUE(client->SendFrame(request));
  auto reply = client->RecvFrame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kConversationResponse);
  EXPECT_EQ(reply->payload, request.payload);
  server.join();
}

TEST(Tcp, LargeFrame) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.has_value());
  std::thread server([&] {
    auto conn = listener->Accept();
    auto frame = conn->RecvFrame();
    ASSERT_TRUE(frame.has_value());
    conn->SendFrame(*frame);
  });
  auto client = TcpConnection::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  util::Xoshiro256Rng rng(2);
  Frame big{FrameType::kBatch, 1, rng.RandomBytes(4 << 20)};  // 4 MB
  ASSERT_TRUE(client->SendFrame(big));
  auto echo = client->RecvFrame();
  ASSERT_TRUE(echo.has_value());
  EXPECT_EQ(echo->payload, big.payload);
  server.join();
}

TEST(Tcp, EofOnPeerClose) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.has_value());
  std::thread server([&] {
    auto conn = listener->Accept();
    conn->Close();
  });
  auto client = TcpConnection::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  EXPECT_FALSE(client->RecvFrame().has_value());
  EXPECT_EQ(client->last_recv_status(), RecvStatus::kEof);
  server.join();
}

// A dead peer must surface as a timeout — a distinct error from EOF — so a
// stage waiting on a wedged hop can abandon the round instead of blocking
// its worker thread forever.
TEST(Tcp, RecvDeadlineTimesOutDistinctFromEof) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.has_value());
  std::promise<void> close_now;
  std::thread server([&] {
    auto conn = listener->Accept();
    close_now.get_future().wait();  // hold the connection open, send nothing
    conn->Close();
  });

  auto client = TcpConnection::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  ASSERT_TRUE(client->SetRecvTimeout(100));
  EXPECT_FALSE(client->RecvFrame().has_value());
  EXPECT_EQ(client->last_recv_status(), RecvStatus::kTimeout);

  close_now.set_value();
  // After the peer actually closes, the same connection reports EOF, not a
  // timeout (retry through any deadline that fires before the close lands).
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(client->RecvFrame().has_value());
    if (client->last_recv_status() != RecvStatus::kTimeout) {
      break;
    }
  }
  EXPECT_EQ(client->last_recv_status(), RecvStatus::kEof);
  server.join();
}

// The deadline only fires at frame boundaries: a frame whose bytes trickle in
// slower than the deadline still completes (aborting mid-frame would
// desynchronize the stream), and a peer dying mid-frame surfaces as EOF.
TEST(Tcp, RecvDeadlineToleratesSlowMidFrameProgress) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.has_value());

  // A raw client that sends a frame in two halves with a stall longer than
  // the receive deadline in between.
  int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listener->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  Frame frame{FrameType::kDialAck, 3, {7, 7, 7}};
  util::Bytes encoded = EncodeFrame(frame);
  util::Bytes wire(4);
  util::StoreBe32(wire.data(), static_cast<uint32_t>(encoded.size()));
  wire.insert(wire.end(), encoded.begin(), encoded.end());

  std::thread sender([&] {
    ASSERT_EQ(::send(raw, wire.data(), 2, 0), 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    ASSERT_EQ(::send(raw, wire.data() + 2, wire.size() - 2, 0),
              static_cast<ssize_t>(wire.size() - 2));
  });

  auto server_side = listener->Accept();
  ASSERT_TRUE(server_side.has_value());
  ASSERT_TRUE(server_side->SetRecvTimeout(100));
  auto received = server_side->RecvFrame();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->round, 3u);
  EXPECT_EQ(received->payload, frame.payload);
  sender.join();

  // A peer dying mid-frame is EOF, not a timeout.
  ASSERT_EQ(::send(raw, wire.data(), 3, 0), 3);
  ::close(raw);
  EXPECT_FALSE(server_side->RecvFrame().has_value());
  EXPECT_EQ(server_side->last_recv_status(), RecvStatus::kEof);
}

TEST(Tcp, ConnectToClosedPortFails) {
  // Find a port that is almost surely closed by binding and releasing it.
  auto listener = TcpListener::Listen(0);
  uint16_t port = listener->port();
  listener->Close();
  EXPECT_FALSE(TcpConnection::Connect("127.0.0.1", port).has_value());
}

TEST(Tcp, ConnectReportsRefusalDistinctFromTimeout) {
  auto listener = TcpListener::Listen(0);
  uint16_t port = listener->port();
  listener->Close();
  ConnectStatus status = ConnectStatus::kOk;
  EXPECT_FALSE(TcpConnection::Connect("127.0.0.1", port, /*timeout_ms=*/500, &status)
                   .has_value());
  // Nothing listening: active refusal, not a deadline expiry — a reconnect
  // supervisor may retry this immediately.
  EXPECT_EQ(status, ConnectStatus::kRefused);
}

TEST(Tcp, ConnectDeadlineBoundsUnroutableHosts) {
  // 198.51.100.1 is TEST-NET-2 (RFC 5737): never routable on the public
  // internet. Depending on the sandbox it either black-holes (kTimeout) or
  // reports no-route fast (kError); the property under test is that the call
  // returns within the deadline instead of minutes of SYN retransmission,
  // and that the failure is never classified as a refusal.
  auto start = std::chrono::steady_clock::now();
  ConnectStatus status = ConnectStatus::kOk;
  auto conn = TcpConnection::Connect("198.51.100.1", 9, /*timeout_ms=*/250, &status);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(3));
  if (conn.has_value()) {
    // A sandbox with a transparent proxy can "successfully" connect to
    // anything; the deadline property is untestable there.
    GTEST_SKIP() << "environment intercepts outbound connections";
  }
  EXPECT_NE(status, ConnectStatus::kOk);
  EXPECT_NE(status, ConnectStatus::kRefused);
}

TEST(Tcp, ConnectWithDeadlineStillWorksOnLoopback) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.has_value());
  ConnectStatus status = ConnectStatus::kError;
  auto client =
      TcpConnection::Connect("127.0.0.1", listener->port(), /*timeout_ms=*/1000, &status);
  ASSERT_TRUE(client.has_value());
  EXPECT_EQ(status, ConnectStatus::kOk);
  // The socket must be back in blocking mode: a frame echo works as usual.
  auto server_side = listener->Accept();
  ASSERT_TRUE(server_side.has_value());
  Frame frame{FrameType::kConversationRequest, 3, {7, 7}};
  ASSERT_TRUE(client->SendFrame(frame));
  auto received = server_side->RecvFrame();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->payload, frame.payload);
}

// Regression: SendFrame on a non-blocking socket must survive partial writes
// and EAGAIN (poll for writability and resume), not report failure with a
// half-frame on the wire. This is the blocking transport's contract once
// descriptors start moving between it and the event loop.
TEST(Tcp, SendFrameSurvivesNonBlockingPartialWrites) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.has_value());
  auto client = TcpConnection::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  auto server_side = listener->Accept();
  ASSERT_TRUE(server_side.has_value());

  // Re-wrap the client socket as non-blocking with a tiny send buffer, so a
  // multi-megabyte frame is guaranteed to hit EAGAIN mid-write.
  int fd = client->ReleaseFd();
  int small = 8 << 10;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &small, sizeof(small)), 0);
  int flags = ::fcntl(fd, F_GETFL, 0);
  ASSERT_EQ(::fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0);
  TcpConnection nonblocking(fd);

  util::Bytes big(4u << 20);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 13);
  }
  std::thread reader([&] {
    // Start late so the writer is parked in EAGAIN, then drain.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    auto frame = server_side->RecvFrame();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->payload, big);
  });
  EXPECT_TRUE(nonblocking.SendFrame(Frame{FrameType::kInvitationDrop, 2, big}));
  reader.join();
}

TEST(Tcp, ListenAcceptsBacklogParameter) {
  auto listener = TcpListener::Listen(0, /*backlog=*/1);
  ASSERT_TRUE(listener.has_value());
  auto client = TcpConnection::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  EXPECT_TRUE(listener->Accept().has_value());
}

TEST(Tcp, MultipleFramesOnOneConnection) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.has_value());
  std::thread server([&] {
    auto conn = listener->Accept();
    for (int i = 0; i < 5; ++i) {
      auto frame = conn->RecvFrame();
      ASSERT_TRUE(frame.has_value());
      conn->SendFrame(*frame);
    }
  });
  auto client = TcpConnection::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.has_value());
  for (uint64_t i = 0; i < 5; ++i) {
    Frame frame{FrameType::kDialRequest, i, {static_cast<uint8_t>(i)}};
    ASSERT_TRUE(client->SendFrame(frame));
    auto echo = client->RecvFrame();
    ASSERT_TRUE(echo.has_value());
    EXPECT_EQ(echo->round, i);
  }
  server.join();
}

}  // namespace
}  // namespace vuvuzela::net
