// Cover-traffic planning tests (Algorithm 2 step 2).

#include <gtest/gtest.h>

#include "src/noise/noise_gen.h"
#include "src/util/random.h"

namespace vuvuzela::noise {
namespace {

TEST(PlanConversationNoise, DeterministicModeIsExactlyMu) {
  NoiseConfig config{.params = {300.0, 20.0}, .deterministic = true};
  util::Xoshiro256Rng rng(1);
  ConversationNoisePlan plan = PlanConversationNoise(config, rng);
  EXPECT_EQ(plan.singles, 300u);
  EXPECT_EQ(plan.pairs, 150u);  // ⌈300/2⌉
  EXPECT_EQ(plan.total_requests(), 600u);
}

TEST(PlanConversationNoise, DeterministicOddMuRoundsPairsUp) {
  NoiseConfig config{.params = {301.0, 20.0}, .deterministic = true};
  util::Xoshiro256Rng rng(1);
  ConversationNoisePlan plan = PlanConversationNoise(config, rng);
  EXPECT_EQ(plan.singles, 301u);
  EXPECT_EQ(plan.pairs, 151u);  // ⌈301/2⌉
}

TEST(PlanConversationNoise, SampledMeanTracksMu) {
  NoiseConfig config{.params = {200.0, 10.0}, .deterministic = false};
  util::Xoshiro256Rng rng(42);
  double singles_sum = 0, pairs_sum = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    ConversationNoisePlan plan = PlanConversationNoise(config, rng);
    singles_sum += static_cast<double>(plan.singles);
    pairs_sum += static_cast<double>(plan.pairs);
  }
  EXPECT_NEAR(singles_sum / kTrials, 200.5, 1.0);
  // pairs = ⌈n2/2⌉ with n2 centered at 200 → ≈ 100.
  EXPECT_NEAR(pairs_sum / kTrials, 100.5, 1.0);
}

TEST(PlanConversationNoise, SampledHasVariance) {
  NoiseConfig config{.params = {200.0, 10.0}, .deterministic = false};
  util::Xoshiro256Rng rng(43);
  uint64_t first = PlanConversationNoise(config, rng).singles;
  bool varied = false;
  for (int i = 0; i < 50 && !varied; ++i) {
    varied = PlanConversationNoise(config, rng).singles != first;
  }
  EXPECT_TRUE(varied);
}

TEST(PlanDialingNoise, OneCountPerDeadDrop) {
  NoiseConfig config{.params = {50.0, 5.0}, .deterministic = true};
  util::Xoshiro256Rng rng(2);
  std::vector<uint64_t> counts = PlanDialingNoise(config, 7, rng);
  ASSERT_EQ(counts.size(), 7u);
  for (uint64_t c : counts) {
    EXPECT_EQ(c, 50u);
  }
}

TEST(PlanDialingNoise, IndependentDrawsPerDrop) {
  NoiseConfig config{.params = {50.0, 8.0}, .deterministic = false};
  util::Xoshiro256Rng rng(3);
  std::vector<uint64_t> counts = PlanDialingNoise(config, 100, rng);
  bool varied = false;
  for (size_t i = 1; i < counts.size(); ++i) {
    varied |= counts[i] != counts[0];
  }
  EXPECT_TRUE(varied);
}

TEST(PlanDialingNoise, EmptyDropListIsEmpty) {
  NoiseConfig config{.params = {50.0, 8.0}, .deterministic = false};
  util::Xoshiro256Rng rng(4);
  EXPECT_TRUE(PlanDialingNoise(config, 0, rng).empty());
}

}  // namespace
}  // namespace vuvuzela::noise
