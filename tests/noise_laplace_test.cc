// Laplace sampler and pmf tests: analytic CDF identities, pmf normalization,
// and sampled moments against closed forms.

#include <gtest/gtest.h>

#include <cmath>

#include "src/noise/laplace.h"
#include "src/sim/correlation.h"
#include "src/util/random.h"

namespace vuvuzela::noise {
namespace {

TEST(LaplaceCdf, KnownValues) {
  LaplaceParams p{0.0, 1.0};
  EXPECT_DOUBLE_EQ(LaplaceCdf(p, 0.0), 0.5);
  EXPECT_NEAR(LaplaceCdf(p, 1.0), 1.0 - 0.5 * std::exp(-1.0), 1e-12);
  EXPECT_NEAR(LaplaceCdf(p, -1.0), 0.5 * std::exp(-1.0), 1e-12);
}

TEST(LaplaceCdf, ShiftAndScale) {
  LaplaceParams p{10.0, 3.0};
  EXPECT_DOUBLE_EQ(LaplaceCdf(p, 10.0), 0.5);
  // Symmetry about the mean.
  EXPECT_NEAR(LaplaceCdf(p, 10.0 + 4.0), 1.0 - LaplaceCdf(p, 10.0 - 4.0), 1e-12);
}

TEST(LaplaceCdf, RejectsNonPositiveScale) {
  EXPECT_THROW(LaplaceCdf(LaplaceParams{0.0, 0.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(SampleLaplace(LaplaceParams{0.0, -1.0}, util::GlobalRng()),
               std::invalid_argument);
}

TEST(CeilTruncatedLaplacePmf, SumsToOne) {
  for (LaplaceParams p : {LaplaceParams{5.0, 2.0}, LaplaceParams{20.0, 4.0},
                          LaplaceParams{0.0, 1.0}, LaplaceParams{100.0, 10.0}}) {
    double total = 0.0;
    uint64_t limit = static_cast<uint64_t>(p.mu + 60.0 * p.b) + 1;
    for (uint64_t n = 0; n <= limit; ++n) {
      total += CeilTruncatedLaplacePmf(p, n);
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "mu=" << p.mu << " b=" << p.b;
  }
}

TEST(CeilTruncatedLaplacePmf, ZeroMassEqualsNegativeTail) {
  LaplaceParams p{5.0, 2.0};
  EXPECT_NEAR(CeilTruncatedLaplacePmf(p, 0), 0.5 * std::exp(-2.5), 1e-12);
}

TEST(CeilTruncatedLaplaceMean, ApproachesMuForLargeMu) {
  // When the truncation at 0 is negligible, the mean of the ceiled variable
  // is µ + 1/2 ± O(tail): ceiling adds about half a unit.
  LaplaceParams p{100.0, 5.0};
  double mean = CeilTruncatedLaplaceMean(p);
  EXPECT_NEAR(mean, 100.5, 0.05);
}

TEST(CeilTruncatedLaplaceMean, TruncationRaisesSmallMuMean) {
  // With µ = 0 half the mass truncates to zero and the positive half remains:
  // mean = E[ceil(L)·1{L>0}] ∈ (0, b).
  LaplaceParams p{0.0, 4.0};
  double mean = CeilTruncatedLaplaceMean(p);
  EXPECT_GT(mean, 1.0);
  EXPECT_LT(mean, 4.0);
}

TEST(SampleLaplace, MomentsMatch) {
  LaplaceParams p{50.0, 10.0};
  util::Xoshiro256Rng rng(31337);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    double x = SampleLaplace(p, rng);
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / kSamples;
  double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 50.0, 0.2);
  // Var of Laplace = 2b².
  EXPECT_NEAR(var, 200.0, 8.0);
}

TEST(SampleCeilTruncatedLaplace, MatchesAnalyticMean) {
  LaplaceParams p{30.0, 6.0};
  util::Xoshiro256Rng rng(99);
  double analytic = CeilTruncatedLaplaceMean(p);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(SampleCeilTruncatedLaplace(p, rng));
  }
  EXPECT_NEAR(sum / kSamples, analytic, 0.15);
}

TEST(SampleCeilTruncatedLaplace, NeverNegativeAndTruncates) {
  // With µ well below zero almost every draw should truncate to 0.
  LaplaceParams p{-50.0, 2.0};
  util::Xoshiro256Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(SampleCeilTruncatedLaplace(p, rng), 0u);
  }
}

TEST(SampleCeilTruncatedLaplace, EmpiricalPmfMatchesAnalytic) {
  LaplaceParams p{8.0, 2.0};
  util::Xoshiro256Rng rng(4242);
  constexpr int kSamples = 300000;
  std::vector<int> histogram(64, 0);
  for (int i = 0; i < kSamples; ++i) {
    uint64_t v = SampleCeilTruncatedLaplace(p, rng);
    if (v < histogram.size()) {
      histogram[v]++;
    }
  }
  for (uint64_t n = 0; n < 24; ++n) {
    double expected = CeilTruncatedLaplacePmf(p, n);
    double observed = static_cast<double>(histogram[n]) / kSamples;
    EXPECT_NEAR(observed, expected, 0.004) << "n=" << n;
  }
}

// Distribution-conformance grid (adversarial privacy suite): a chi-squared
// goodness-of-fit of the sampler against the analytic ⌈max(0,Laplace)⌉ pmf
// across the parameter regimes the deployments use — small µ where the
// truncation atom at 0 is heavy, paper-style large µ/b, and skewed shapes.
// §4.2's guarantee is about the noise *distribution*; a sampler that merely
// gets the mean right would pass the moment tests above and still leak.
TEST(SampleCeilTruncatedLaplace, ChiSquaredConformanceGrid) {
  struct Case {
    LaplaceParams params;
    uint64_t seed;
  };
  const Case kGrid[] = {
      {{0.0, 1.0}, 11},    // half the mass on the truncation atom
      {{2.0, 1.0}, 12},    // the failure-injection suite's shape
      {{8.0, 2.0}, 13},    // mid-size
      {{50.0, 3.5}, 14},   // vuvuzela-hopd's --mu 50 derivation (µ/20 + 1)
      {{40.0, 20.0}, 15},  // wide: the wiretap suite's sampled regime
  };
  constexpr size_t kSamples = 50000;
  for (const Case& c : kGrid) {
    util::Xoshiro256Rng rng(c.seed);
    std::vector<uint64_t> samples;
    samples.reserve(kSamples);
    for (size_t i = 0; i < kSamples; ++i) {
      samples.push_back(SampleCeilTruncatedLaplace(c.params, rng));
    }
    sim::ChiSquaredFit fit = sim::ChiSquaredAgainstCeilTruncatedLaplace(samples, c.params);
    ASSERT_GE(fit.bins, 2u) << "mu=" << c.params.mu << " b=" << c.params.b;
    // Fixed seeds make this deterministic; α = 0.001 leaves headroom so the
    // grid is a conformance check, not a coin flip.
    double critical = sim::ChiSquaredCriticalValue(fit.degrees_of_freedom, 0.001);
    EXPECT_LT(fit.statistic, critical)
        << "mu=" << c.params.mu << " b=" << c.params.b << " dof=" << fit.degrees_of_freedom;
    // Mean agreement rides along: the empirical mean of the same draw must
    // sit on the analytic CeilTruncatedLaplaceMean within sampling error.
    double sum = 0.0;
    for (uint64_t v : samples) {
      sum += static_cast<double>(v);
    }
    double std_error = c.params.b * 2.0 / std::sqrt(static_cast<double>(kSamples));
    EXPECT_NEAR(sum / static_cast<double>(kSamples), CeilTruncatedLaplaceMean(c.params),
                5.0 * std_error + 0.01)
        << "mu=" << c.params.mu << " b=" << c.params.b;
  }
}

// The conformance grid must be able to fail: samples drawn from visibly wrong
// parameters (shifted mean, halved spread) blow past the same critical value.
TEST(SampleCeilTruncatedLaplace, ChiSquaredRejectsWrongDistribution) {
  LaplaceParams truth{8.0, 2.0};
  util::Xoshiro256Rng rng(4242);
  std::vector<uint64_t> samples;
  for (size_t i = 0; i < 50000; ++i) {
    samples.push_back(SampleCeilTruncatedLaplace(truth, rng));
  }
  for (LaplaceParams wrong : {LaplaceParams{10.0, 2.0}, LaplaceParams{8.0, 1.0}}) {
    sim::ChiSquaredFit fit = sim::ChiSquaredAgainstCeilTruncatedLaplace(samples, wrong);
    double critical = sim::ChiSquaredCriticalValue(fit.degrees_of_freedom, 0.001);
    EXPECT_GT(fit.statistic, critical) << "mu=" << wrong.mu << " b=" << wrong.b;
  }
}

TEST(LaplaceParams, HalvedMatchesScalingProperty) {
  LaplaceParams p{300000.0, 13800.0};
  LaplaceParams h = p.Halved();
  EXPECT_DOUBLE_EQ(h.mu, 150000.0);
  EXPECT_DOUBLE_EQ(h.b, 6900.0);
}

}  // namespace
}  // namespace vuvuzela::noise
