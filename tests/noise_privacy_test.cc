// Privacy accountant tests.
//
// The centerpiece is a numerical verification of Theorem 1: for a grid of
// (µ, b) noise parameters and every neighboring action shift from Figure 6,
// we compute the exact hockey-stick divergence of the noised observable pair
// (m1+N1, m2+N2) and check it is within the theorem's δ at ε = 4/b.

#include <gtest/gtest.h>

#include <cmath>

#include "src/noise/laplace.h"
#include "src/noise/privacy.h"

namespace vuvuzela::noise {
namespace {

constexpr double kLn2 = 0.6931471805599453;

TEST(ConversationRound, Theorem1ClosedForm) {
  LaplaceParams p{300000.0, 13800.0};
  PrivacyBound bound = ConversationRound(p);
  EXPECT_NEAR(bound.epsilon, 4.0 / 13800.0, 1e-12);
  EXPECT_NEAR(bound.delta, std::exp((2.0 - 300000.0) / 13800.0), 1e-15);
}

TEST(DialingRound, ClosedForm) {
  LaplaceParams p{13000.0, 770.0};
  PrivacyBound bound = DialingRound(p);
  EXPECT_NEAR(bound.epsilon, 2.0 / 770.0, 1e-12);
  EXPECT_NEAR(bound.delta, 0.5 * std::exp((1.0 - 13000.0) / 770.0), 1e-18);
}

TEST(Compose, MatchesHandComputation) {
  // (µ=300K, b=13800), k=250,000, d=1e-5 — the paper's headline setting.
  PrivacyBound per_round = ConversationRound(LaplaceParams{300000.0, 13800.0});
  PrivacyBound total = Compose(per_round, 250000, 1e-5);
  // ε' = √(2k ln 1e5)·ε + kε(e^ε−1) ≈ 0.6955 + 0.0210 ≈ 0.7165.
  EXPECT_NEAR(total.epsilon, 0.7165, 0.002);
  // δ' = kδ + d ≈ 250000·3.6e-10 + 1e-5 ≈ 1.0e-4.
  EXPECT_NEAR(total.delta, 1.0e-4, 1.5e-5);
}

TEST(Compose, RejectsNonPositiveSlack) {
  PrivacyBound pr{0.001, 1e-9};
  EXPECT_THROW(Compose(pr, 10, 0.0), std::invalid_argument);
}

TEST(MaxRounds, PaperConversationSettings) {
  // §6.4: "70,000 rounds for µ=150K, 250,000 for µ=300K, 500,000 for µ=450K"
  // at ε' = ln 2, δ' = 1e-4 with scales b = 7300, 13800, 20000. Our exact
  // accountant lands slightly below the paper's rounded claims; assert the
  // same order and a tight bracket.
  struct Row {
    double mu, b;
    uint64_t lo, hi;
  };
  for (const Row& row : {Row{150000, 7300, 55000, 80000},
                         Row{300000, 13800, 210000, 270000},
                         Row{450000, 20000, 440000, 520000}}) {
    PrivacyBound per_round = ConversationRound(LaplaceParams{row.mu, row.b});
    uint64_t k = MaxRounds(per_round, kLn2, 1e-4, 1e-5);
    EXPECT_GE(k, row.lo) << "mu=" << row.mu;
    EXPECT_LE(k, row.hi) << "mu=" << row.mu;
  }
}

TEST(MaxRounds, MonotoneInMu) {
  uint64_t prev = 0;
  for (double mu : {150000.0, 300000.0, 450000.0}) {
    NoiseSweepResult best = BestScaleForMu(mu, kLn2, 1e-4, 1e-5);
    EXPECT_GT(best.rounds, prev);
    prev = best.rounds;
  }
}

TEST(MaxRounds, ZeroWhenOneRoundAlreadyExceeds) {
  // Tiny noise: a single round blows the budget.
  PrivacyBound per_round = ConversationRound(LaplaceParams{1.0, 0.5});
  EXPECT_EQ(MaxRounds(per_round, kLn2, 1e-4, 1e-5), 0u);
}

TEST(BestScaleForMu, RecoversPaperScales) {
  // The paper chose b by exactly this sweep; we should land within a few
  // percent of its printed scales.
  NoiseSweepResult r150 = BestScaleForMu(150000, kLn2, 1e-4, 1e-5);
  EXPECT_NEAR(r150.b, 7300, 500);
  NoiseSweepResult r300 = BestScaleForMu(300000, kLn2, 1e-4, 1e-5);
  EXPECT_NEAR(r300.b, 13800, 900);
}

TEST(BestScaleForMu, DialingRecoversCorrectedScale) {
  // §6.5 prints (µ=13000, b=7700), but that b makes the per-round δ ≈ 0.09 —
  // five orders of magnitude above the δ' = 1e-4 target, so it must be a
  // typo. The sweep recovers b in the hundreds.
  NoiseSweepResult r = BestScaleForMu(13000, kLn2, 1e-4, 1e-5, /*dialing=*/true);
  EXPECT_GT(r.b, 400);
  EXPECT_LT(r.b, 1200);
  EXPECT_GT(r.rounds, 1500u);
  EXPECT_LT(r.rounds, 6000u);
}

TEST(ConversationNoiseForTarget, InvertsTheorem1) {
  LaplaceParams p = ConversationNoiseForTarget(2e-4, 1e-9);
  PrivacyBound round = ConversationRound(p);
  EXPECT_NEAR(round.epsilon, 2e-4, 1e-12);
  EXPECT_NEAR(round.delta, 1e-9, 1e-15);
}

TEST(MaxPosterior, PaperExamples) {
  // §6.4: prior 50% → 67% at ε = ln 2, 75% at ε = ln 3; prior 1% → 3% at ln 3.
  EXPECT_NEAR(MaxPosterior(0.5, kLn2), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(MaxPosterior(0.5, std::log(3.0)), 0.75, 1e-12);
  EXPECT_NEAR(MaxPosterior(0.01, std::log(3.0)), 0.0294, 0.0005);
}

TEST(MaxPosterior, EdgeCases) {
  EXPECT_DOUBLE_EQ(MaxPosterior(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(MaxPosterior(1.0, 1.0), 1.0);
  EXPECT_THROW(MaxPosterior(-0.1, 1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Numerical Theorem 1 verification.
//
// δ_exact(Δ1, Δ2) = Σ_{o1,o2} max(0, P[o|x] − e^ε·P[o|y]) where
// P[o|x] = pmf1(o1)·pmf2(o2) and P[o|y] = pmf1(o1−Δ1)·pmf2(o2−Δ2)
// (pmf(n) = 0 for n < 0). Theorem 1 claims δ_exact ≤ exp((2−µ)/b) for all
// |Δ1| ≤ 2, |Δ2| ≤ 1 at ε = 4/b.
// ---------------------------------------------------------------------------

double ExactHockeyStick(const LaplaceParams& noise, int d1, int d2, double epsilon) {
  LaplaceParams p1 = noise;
  LaplaceParams p2 = noise.Halved();
  auto pmf1 = [&](int64_t n) {
    return n < 0 ? 0.0 : CeilTruncatedLaplacePmf(p1, static_cast<uint64_t>(n));
  };
  auto pmf2 = [&](int64_t n) {
    return n < 0 ? 0.0 : CeilTruncatedLaplacePmf(p2, static_cast<uint64_t>(n));
  };
  int64_t limit1 = static_cast<int64_t>(noise.mu + 50.0 * noise.b) + 4;
  int64_t limit2 = static_cast<int64_t>(noise.mu / 2 + 25.0 * noise.b) + 4;
  double e_eps = std::exp(epsilon);

  double total = 0.0;
  for (int64_t o1 = 0; o1 <= limit1; ++o1) {
    double px1 = pmf1(o1);
    double py1 = pmf1(o1 - d1);
    for (int64_t o2 = 0; o2 <= limit2; ++o2) {
      double px = px1 * pmf2(o2);
      double py = py1 * pmf2(o2 - d2);
      double diff = px - e_eps * py;
      if (diff > 0.0) {
        total += diff;
      }
    }
  }
  return total;
}

struct GridCase {
  double mu, b;
};

class Theorem1Grid : public ::testing::TestWithParam<GridCase> {};

TEST_P(Theorem1Grid, HockeyStickWithinDelta) {
  const GridCase& c = GetParam();
  LaplaceParams noise{c.mu, c.b};
  PrivacyBound bound = ConversationRound(noise);

  // All neighboring shifts reachable by changing one user's conversation
  // action (Figure 6 lists (0,0), (−2,+1), (+2,−1); we cover the full
  // sensitivity box the theorem promises).
  for (int d1 = -2; d1 <= 2; ++d1) {
    for (int d2 = -1; d2 <= 1; ++d2) {
      double exact = ExactHockeyStick(noise, d1, d2, bound.epsilon);
      EXPECT_LE(exact, bound.delta * (1.0 + 1e-9) + 1e-12)
          << "mu=" << c.mu << " b=" << c.b << " d1=" << d1 << " d2=" << d2;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Parameters, Theorem1Grid,
                         ::testing::Values(GridCase{20, 3}, GridCase{30, 5}, GridCase{15, 2},
                                           GridCase{50, 8}, GridCase{12, 4}));

// The bound is not vacuous: without noise (µ→0, b tiny) the divergence for a
// nonzero shift is large.
TEST(Theorem1, NoNoiseLeaks) {
  LaplaceParams p{0.001, 0.01};
  // With essentially deterministic zero noise, shifting m1 by 2 is perfectly
  // distinguishable: the divergence approaches 1.
  double exact = ExactHockeyStick(p, 2, 0, 0.0);
  EXPECT_GT(exact, 0.9);
}

}  // namespace
}  // namespace vuvuzela::noise
