// obs:: tests — metric registry (sharded counters, histogram bucket
// boundaries, concurrent merging), Prometheus exposition round-trip, the
// /metrics + /trace HTTP surface in both serve shapes, the bounded trace
// ring, and the offline stitcher.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/http.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace vuvuzela::obs {
namespace {

// --- Registry: counters, gauges, histograms ---------------------------------

TEST(Counter, SumsAcrossShards) {
  Registry registry;
  Counter* counter = registry.GetCounter("test_events_total", "events");
  EXPECT_EQ(counter->Value(), 0u);
  counter->Add();
  counter->Add(41);
  EXPECT_EQ(counter->Value(), 42u);
}

TEST(Counter, ConcurrentIncrementsMergeExactly) {
  Registry registry;
  Counter* counter = registry.GetCounter("test_concurrent_total", "events");
  // More threads than shards so shard indices collide; the relaxed
  // fetch_adds must still sum exactly. TSan covers the data-race half.
  constexpr size_t kThreads = 2 * kMetricShards;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Add();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(Gauge, SetAddValue) {
  Registry registry;
  Gauge* gauge = registry.GetGauge("test_depth", "depth");
  gauge->Set(10);
  gauge->Add(-3);
  EXPECT_EQ(gauge->Value(), 7);
  gauge->Add(-10);
  EXPECT_EQ(gauge->Value(), -3);  // gauges may go negative; counters cannot
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Registry registry;
  Histogram* histogram = registry.GetHistogram("test_seconds", "latency", {1.0, 2.0, 4.0});
  // One observation per interesting position: below the first bound, exactly
  // on each bound (le semantics: a value equal to the bound lands in that
  // bucket), between bounds, and above the last bound (+Inf bucket).
  histogram->Observe(0.5);  // bucket le=1
  histogram->Observe(1.0);  // bucket le=1 (inclusive)
  histogram->Observe(1.5);  // bucket le=2
  histogram->Observe(2.0);  // bucket le=2 (inclusive)
  histogram->Observe(4.0);  // bucket le=4 (inclusive)
  histogram->Observe(4.5);  // +Inf
  Histogram::Snapshot snap = histogram->Snap();
  ASSERT_EQ(snap.boundaries.size(), 3u);
  ASSERT_EQ(snap.cumulative.size(), 4u);
  EXPECT_EQ(snap.cumulative[0], 2u);  // le=1
  EXPECT_EQ(snap.cumulative[1], 4u);  // le=2 (cumulative)
  EXPECT_EQ(snap.cumulative[2], 5u);  // le=4
  EXPECT_EQ(snap.cumulative[3], 6u);  // +Inf == count
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.5);
}

TEST(Histogram, ConcurrentObservationsMergeExactly) {
  Registry registry;
  Histogram* histogram =
      registry.GetHistogram("test_concurrent_seconds", "latency", {1.0, 2.0});
  constexpr size_t kThreads = 2 * kMetricShards;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram, t] {
      // Thread t observes a fixed value, so the expected per-bucket counts
      // are exact: a third of the threads per bucket.
      const double value = t % 3 == 0 ? 0.5 : (t % 3 == 1 ? 1.5 : 3.0);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        histogram->Observe(value);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  Histogram::Snapshot snap = histogram->Snap();
  const uint64_t third = kThreads / 3 * kPerThread;
  EXPECT_EQ(snap.cumulative[0], third + (kThreads % 3 > 0 ? kPerThread : 0));
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  // The CAS-looped double sum loses nothing: every value is exactly
  // representable and the total stays well under 2^53.
  const double expected_sum =
      kPerThread * (0.5 * ((kThreads + 2) / 3) + 1.5 * ((kThreads + 1) / 3) + 3.0 * (kThreads / 3));
  EXPECT_DOUBLE_EQ(snap.sum, expected_sum);
}

TEST(Registry, GetIsIdempotent) {
  Registry registry;
  Counter* a = registry.GetCounter("test_total", "help");
  Counter* b = registry.GetCounter("test_total", "other help is ignored");
  EXPECT_EQ(a, b);
  Histogram* h1 = registry.GetHistogram("test_hist", "h", {1, 2});
  Histogram* h2 = registry.GetHistogram("test_hist", "h", {7, 8, 9});  // boundaries ignored
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->boundaries().size(), 2u);
}

TEST(Registry, PresetBucketsAscend) {
  for (const auto& buckets : {LatencyBuckets(), PassLatencyBuckets(), SizeBuckets()}) {
    ASSERT_GE(buckets.size(), 2u);
    for (size_t i = 1; i < buckets.size(); ++i) {
      EXPECT_LT(buckets[i - 1], buckets[i]);
    }
  }
}

// --- Prometheus exposition: render, then parse it back -----------------------

// Minimal exposition parser: returns sample name -> value for every
// non-comment line, and records any label strings it sees.
std::map<std::string, double> ParseExposition(const std::string& text,
                                              std::vector<std::string>* labels) {
  std::map<std::string, double> samples;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    std::string line = text.substr(pos, eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << "malformed sample line: " << line;
    std::string name = line.substr(0, space);
    size_t brace = name.find('{');
    if (brace != std::string::npos) {
      labels->push_back(name.substr(brace));
      name = name.substr(0, brace) + labels->back();
    }
    samples[name] = std::strtod(line.c_str() + space + 1, nullptr);
  }
  return samples;
}

TEST(Exposition, RendersAndParsesRoundTrip) {
  Registry registry;
  registry.GetCounter("demo_events_total", "events")->Add(7);
  registry.GetGauge("demo_depth", "depth")->Set(-4);
  Histogram* histogram = registry.GetHistogram("demo_seconds", "latency", {0.5, 2.0});
  histogram->Observe(0.25);
  histogram->Observe(1.0);
  histogram->Observe(10.0);

  std::string text = registry.RenderPrometheus();
  std::vector<std::string> labels;
  std::map<std::string, double> samples = ParseExposition(text, &labels);

  EXPECT_DOUBLE_EQ(samples.at("demo_events_total"), 7);
  EXPECT_DOUBLE_EQ(samples.at("demo_depth"), -4);
  EXPECT_DOUBLE_EQ(samples.at("demo_seconds_bucket{le=\"0.5\"}"), 1);
  EXPECT_DOUBLE_EQ(samples.at("demo_seconds_bucket{le=\"2\"}"), 2);
  EXPECT_DOUBLE_EQ(samples.at("demo_seconds_bucket{le=\"+Inf\"}"), 3);
  EXPECT_DOUBLE_EQ(samples.at("demo_seconds_count"), 3);
  EXPECT_DOUBLE_EQ(samples.at("demo_seconds_sum"), 11.25);

  // Aggregate-only by construction: the only label the renderer may ever
  // write is the histogram convention's `le`.
  for (const std::string& label : labels) {
    EXPECT_EQ(label.rfind("{le=\"", 0), 0u) << "forbidden label: " << label;
  }
  // HELP/TYPE comments precede every family.
  EXPECT_NE(text.find("# TYPE demo_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_seconds histogram"), std::string::npos);
}

TEST(Exposition, SnapshotJsonIsOneLine) {
  Registry registry;
  registry.GetCounter("demo_total", "events")->Add(3);
  registry.GetGauge("demo_live", "live")->Set(2);
  registry.GetHistogram("demo_seconds", "latency", {1.0})->Observe(0.5);
  std::string json = registry.SnapshotJson();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{\"demo_total\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"demo_live\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"demo_seconds\":{\"count\":1,\"sum\":0.5}"), std::string::npos);
}

// --- Trace journal: bounded ring, JSONL round-trip, stitching ----------------

TEST(TraceJournal, RingIsBoundedAndKeepsNewest) {
  TraceJournal journal(/*capacity=*/8);
  journal.SetProcess("test");
  for (uint64_t i = 0; i < 20; ++i) {
    journal.Emit(i, "span/test", "i=" + std::to_string(i));
  }
  EXPECT_EQ(journal.total_emitted(), 20u);
  std::vector<TraceRecord> records = journal.Snapshot();
  ASSERT_EQ(records.size(), 8u);
  // Oldest-first, holding exactly the most recent 8 rounds (12..19).
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].round, 12 + i);
  }
}

TEST(TraceJournal, JsonlRoundTripsThroughParser) {
  TraceJournal journal(16);
  journal.SetProcess("hopd-1");
  journal.Emit(3, "hop/pass", "op=forward_conversation items=40");
  journal.Emit(4, "hop/error", "error=\"timeout\" with \\ backslash");
  std::vector<TraceRecord> parsed = ParseTraceJsonl(journal.DumpJsonl());
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].process, "hopd-1");
  EXPECT_EQ(parsed[0].round, 3u);
  EXPECT_EQ(parsed[0].span, "hop/pass");
  EXPECT_EQ(parsed[0].detail, "op=forward_conversation items=40");
  // Escaped quotes and backslashes survive the round trip.
  EXPECT_EQ(parsed[1].detail, "error=\"timeout\" with \\ backslash");
  EXPECT_GT(parsed[1].wall_us, 0);
}

TEST(TraceJournal, DumpFiltersByRound) {
  TraceJournal journal(16);
  journal.SetProcess("coordd");
  journal.Emit(1, "lifecycle/announced");
  journal.Emit(2, "lifecycle/announced");
  journal.Emit(1, "lifecycle/complete");
  std::vector<TraceRecord> parsed = ParseTraceJsonl(journal.DumpJsonl(1));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].span, "lifecycle/announced");
  EXPECT_EQ(parsed[1].span, "lifecycle/complete");
}

TEST(Stitch, MergesDumpsIntoSortedTimelines) {
  // Hand-built records from two "processes" with interleaved wall clocks.
  TraceRecord a1{"coordd", 7, 1000, 0, "lifecycle/announced", "type=conv"};
  TraceRecord a2{"coordd", 7, 5000, 0, "lifecycle/complete", "type=conv"};
  TraceRecord b1{"hopd-0", 7, 3000, 0, "hop/pass", "op=forward_conversation"};
  TraceRecord b2{"hopd-0", 8, 9000, 0, "hop/pass", "op=forward_conversation"};
  std::vector<StitchedRound> rounds = StitchRounds({{a1, a2}, {b1, b2}});
  ASSERT_EQ(rounds.size(), 2u);
  EXPECT_EQ(rounds[0].round, 7u);
  ASSERT_EQ(rounds[0].records.size(), 3u);
  EXPECT_EQ(rounds[0].records[0].span, "lifecycle/announced");
  EXPECT_EQ(rounds[0].records[1].span, "hop/pass");  // wall-clock order, not dump order
  EXPECT_EQ(rounds[0].records[2].span, "lifecycle/complete");
  EXPECT_EQ(rounds[1].round, 8u);
  // spans lists each distinct span once for phase-coverage assertions.
  EXPECT_EQ(rounds[0].spans.size(), 3u);
  EXPECT_EQ(rounds[1].spans.size(), 1u);

  std::string timeline = RenderTimeline(rounds);
  EXPECT_NE(timeline.find("round 7"), std::string::npos);
  EXPECT_NE(timeline.find("coordd"), std::string::npos);
  EXPECT_NE(timeline.find("hop/pass"), std::string::npos);
}

// --- The HTTP surface: shared brain and the blocking acceptor ----------------

TEST(HandleRawHttp, BuffersUntilRequestComplete) {
  Registry registry;
  TraceJournal journal(8);
  EXPECT_FALSE(HandleRawHttp("GET /metrics HTTP/1.1\r\n", registry, journal).has_value());
  auto response = HandleRawHttp("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", registry, journal);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(response->find("Connection: close"), std::string::npos);
}

TEST(HandleRawHttp, RoutesMetricsTraceAnd404) {
  Registry registry;
  registry.GetCounter("routed_total", "events")->Add(5);
  TraceJournal journal(8);
  journal.SetProcess("test");
  journal.Emit(3, "span/a");
  journal.Emit(4, "span/b");

  auto metrics = HandleRawHttp("GET /metrics HTTP/1.0\r\n\r\n", registry, journal);
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->find("routed_total 5"), std::string::npos);

  auto trace = HandleRawHttp("GET /trace HTTP/1.0\r\n\r\n", registry, journal);
  ASSERT_TRUE(trace.has_value());
  EXPECT_NE(trace->find("span/a"), std::string::npos);
  EXPECT_NE(trace->find("span/b"), std::string::npos);

  auto filtered = HandleRawHttp("GET /trace?round=3 HTTP/1.0\r\n\r\n", registry, journal);
  ASSERT_TRUE(filtered.has_value());
  EXPECT_NE(filtered->find("span/a"), std::string::npos);
  EXPECT_EQ(filtered->find("span/b"), std::string::npos);

  auto missing = HandleRawHttp("GET /nope HTTP/1.0\r\n\r\n", registry, journal);
  ASSERT_TRUE(missing.has_value());
  EXPECT_NE(missing->find("404"), std::string::npos);
}

// Plain-socket GET against the blocking acceptor; returns the full response.
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttpServer, ServesScrapesOverRealSockets) {
  Registry registry;
  registry.GetCounter("served_total", "events")->Add(9);
  TraceJournal journal(8);
  journal.SetProcess("test");
  journal.Emit(1, "span/served");
  auto server = MetricsHttpServer::Start(/*port=*/0, &registry, &journal);
  ASSERT_NE(server, nullptr);
  ASSERT_NE(server->port(), 0);

  // Serial scrapes — the acceptor is one thread, connection-per-request.
  std::string metrics = HttpGet(server->port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("served_total 9"), std::string::npos);
  std::string trace = HttpGet(server->port(), "/trace?round=1");
  EXPECT_NE(trace.find("span/served"), std::string::npos);
  EXPECT_NE(HttpGet(server->port(), "/bogus").find("404"), std::string::npos);
}

}  // namespace
}  // namespace vuvuzela::obs
