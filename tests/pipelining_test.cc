// Cross-round pipelining (§8.3: "Clients can pipeline conversation messages,
// sending a new message every round even before receiving responses from
// previous rounds"). Servers hold per-round state; these tests interleave
// several in-flight rounds and verify complete isolation.

#include <gtest/gtest.h>

#include <condition_variable>
#include <future>
#include <mutex>

#include "src/conversation/protocol.h"
#include "src/crypto/onion.h"
#include "src/dialing/protocol.h"
#include "src/engine/round_scheduler.h"
#include "src/mixnet/chain.h"
#include "src/util/random.h"

namespace vuvuzela::mixnet {
namespace {

using conversation::Session;

struct PreparedRound {
  uint64_t round;
  crypto::WrappedOnion alice_onion;
  crypto::WrappedOnion bob_onion;
  util::Bytes alice_text;
};

class PipeliningTest : public ::testing::Test {
 protected:
  PipeliningTest() {
    ChainConfig config;
    config.num_servers = 3;
    config.conversation_noise = {.params = {3.0, 1.0}, .deterministic = true};
    config.parallel = false;
    chain_ = std::make_unique<Chain>(Chain::Create(config, rng_));
    alice_ = crypto::X25519KeyPair::Generate(rng_);
    bob_ = crypto::X25519KeyPair::Generate(rng_);
    alice_session_ = Session::Derive(alice_, bob_.public_key);
    bob_session_ = Session::Derive(bob_, alice_.public_key);
  }

  PreparedRound Prepare(uint64_t round) {
    PreparedRound prep;
    prep.round = round;
    prep.alice_text = {static_cast<uint8_t>('a' + round % 26)};
    auto alice_request =
        conversation::BuildExchangeRequest(alice_session_, round, prep.alice_text);
    auto bob_request = conversation::BuildExchangeRequest(bob_session_, round, {});
    prep.alice_onion =
        crypto::OnionWrap(chain_->public_keys(), round, alice_request.Serialize(), rng_);
    prep.bob_onion =
        crypto::OnionWrap(chain_->public_keys(), round, bob_request.Serialize(), rng_);
    return prep;
  }

  // Verifies Bob received Alice's text for this round's responses.
  void CheckDelivery(const PreparedRound& prep, const std::vector<util::Bytes>& responses) {
    auto inner =
        crypto::OnionOpenResponse(prep.bob_onion.layer_keys, prep.round, responses[1]);
    ASSERT_TRUE(inner.has_value()) << "round " << prep.round;
    wire::Envelope envelope;
    ASSERT_EQ(inner->size(), envelope.size());
    std::copy(inner->begin(), inner->end(), envelope.begin());
    auto opened = conversation::OpenExchangeResponse(bob_session_, prep.round, envelope);
    EXPECT_EQ(opened.kind, conversation::ResponseKind::kPartnerMessage);
    EXPECT_EQ(opened.text, prep.alice_text);
  }

  util::Xoshiro256Rng rng_{31415};
  std::unique_ptr<Chain> chain_;
  crypto::X25519KeyPair alice_, bob_;
  Session alice_session_, bob_session_;
};

TEST_F(PipeliningTest, ThreeRoundsInFlightAtServerLevel) {
  // Drive the servers by hand: forward rounds 1..3 through the whole chain
  // before running any return pass, then return them out of order.
  std::vector<PreparedRound> preps;
  std::vector<std::vector<util::Bytes>> last_hop_responses(4);
  for (uint64_t round = 1; round <= 3; ++round) {
    preps.push_back(Prepare(round));
    std::vector<util::Bytes> batch = {preps.back().alice_onion.data,
                                      preps.back().bob_onion.data};
    batch = chain_->server(0).ForwardConversation(round, std::move(batch));
    batch = chain_->server(1).ForwardConversation(round, std::move(batch));
    auto result = chain_->server(2).ProcessConversationLastHop(round, std::move(batch));
    last_hop_responses[round] = std::move(result.responses);
  }
  EXPECT_EQ(chain_->server(0).pending_rounds(), 3u);

  // Return passes in order 2, 1, 3 — per-round state must not interfere.
  for (uint64_t round : {2u, 1u, 3u}) {
    auto responses =
        chain_->server(1).BackwardConversation(round, std::move(last_hop_responses[round]));
    responses = chain_->server(0).BackwardConversation(round, std::move(responses));
    CheckDelivery(preps[round - 1], responses);
  }
  EXPECT_EQ(chain_->server(0).pending_rounds(), 0u);
}

TEST_F(PipeliningTest, ManySequentialRoundsNoStateLeak) {
  for (uint64_t round = 1; round <= 12; ++round) {
    PreparedRound prep = Prepare(round);
    auto result = chain_->RunConversationRound(
        round, {prep.alice_onion.data, prep.bob_onion.data});
    CheckDelivery(prep, result.responses);
  }
  EXPECT_EQ(chain_->server(0).pending_rounds(), 0u);
  EXPECT_EQ(chain_->server(1).pending_rounds(), 0u);
}

TEST_F(PipeliningTest, DialingInterleavedWithConversations) {
  // A dialing round between two in-flight conversation rounds must not
  // disturb either (disjoint round-number spaces).
  PreparedRound conv = Prepare(5);
  std::vector<util::Bytes> batch = {conv.alice_onion.data, conv.bob_onion.data};
  batch = chain_->server(0).ForwardConversation(5, std::move(batch));

  // Dialing round through the same servers while round 5 is in flight.
  dialing::RoundConfig dial_config{.num_real_drops = 1};
  wire::DialRequest dial =
      dialing::BuildDialRequest(dial_config, alice_.public_key, bob_.public_key, rng_);
  uint64_t dial_round = 1ULL << 63;
  auto dial_onion =
      crypto::OnionWrap(chain_->public_keys(), dial_round, dial.Serialize(), rng_);
  auto dial_batch = chain_->server(0).ForwardDialing(dial_round, {dial_onion.data},
                                                     dial_config.total_drops());
  dial_batch = chain_->server(1).ForwardDialing(dial_round, std::move(dial_batch),
                                                dial_config.total_drops());
  auto table = chain_->server(2).ProcessDialingLastHop(dial_round, std::move(dial_batch),
                                                       dial_config.total_drops());
  auto callers = dialing::ScanInvitations(bob_, table.Drop(0));
  ASSERT_EQ(callers.size(), 1u);

  // Now finish conversation round 5.
  batch = chain_->server(1).ForwardConversation(5, std::move(batch));
  auto result = chain_->server(2).ProcessConversationLastHop(5, std::move(batch));
  auto responses = chain_->server(1).BackwardConversation(5, std::move(result.responses));
  responses = chain_->server(0).BackwardConversation(5, std::move(responses));
  CheckDelivery(conv, responses);
}

// Blocks every round at server 0's forward pass until released, forcing a
// deterministic number of rounds to pile up inside the scheduler.
class GateObserver : public ChainObserver {
 public:
  void OnForwardPass(size_t position, uint64_t, const std::vector<util::Bytes>&,
                     const std::vector<util::Bytes>&) override {
    if (position != 0) {
      return;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return permits_ > 0; });
    --permits_;
  }

  void Release(size_t count) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      permits_ += count;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t permits_ = 0;
};

TEST_F(PipeliningTest, SchedulerKeepsKRoundsInFlight) {
  GateObserver gate;
  chain_->set_observer(&gate);
  engine::RoundScheduler scheduler(*chain_, {.max_in_flight = 3});

  std::vector<PreparedRound> preps;
  std::vector<std::future<Chain::ConversationResult>> futures;
  for (uint64_t round = 1; round <= 3; ++round) {
    preps.push_back(Prepare(round));
    futures.push_back(scheduler.SubmitConversation(
        round, {preps.back().alice_onion.data, preps.back().bob_onion.data}));
  }
  // All three rounds were admitted without blocking; none can pass server 0
  // until the gate opens, so the pipeline is provably holding K rounds.
  EXPECT_EQ(scheduler.in_flight(), 3u);

  gate.Release(100);
  scheduler.Drain();
  chain_->set_observer(nullptr);

  EXPECT_EQ(scheduler.stats().max_observed_in_flight, 3u);
  for (size_t i = 0; i < futures.size(); ++i) {
    Chain::ConversationResult result = futures[i].get();
    CheckDelivery(preps[i], result.responses);
  }
  EXPECT_EQ(chain_->server(0).pending_rounds(), 0u);
  EXPECT_EQ(chain_->server(1).pending_rounds(), 0u);
}

TEST_F(PipeliningTest, SchedulerPreservesPerRoundIsolationAcrossManyRounds) {
  engine::RoundScheduler scheduler(*chain_, {.max_in_flight = 4});
  std::vector<PreparedRound> preps;
  std::vector<std::future<Chain::ConversationResult>> futures;
  for (uint64_t round = 1; round <= 16; ++round) {
    preps.push_back(Prepare(round));
    futures.push_back(scheduler.SubmitConversation(
        round, {preps.back().alice_onion.data, preps.back().bob_onion.data}));
  }
  scheduler.Drain();
  for (size_t i = 0; i < futures.size(); ++i) {
    Chain::ConversationResult result = futures[i].get();
    CheckDelivery(preps[i], result.responses);
    EXPECT_GE(result.messages_exchanged, 2u) << "round " << preps[i].round;
  }
  auto stats = scheduler.stats();
  EXPECT_EQ(stats.conversation_rounds_completed, 16u);
  EXPECT_EQ(stats.rounds_failed, 0u);
  EXPECT_EQ(chain_->server(0).pending_rounds(), 0u);
  EXPECT_EQ(chain_->server(1).pending_rounds(), 0u);
}

TEST_F(PipeliningTest, SchedulerInterleavesDialingWithConversations) {
  engine::RoundScheduler scheduler(*chain_, {.max_in_flight = 3});

  PreparedRound conv = Prepare(7);
  auto conv_future = scheduler.SubmitConversation(
      7, {conv.alice_onion.data, conv.bob_onion.data});

  dialing::RoundConfig dial_config{.num_real_drops = 1};
  wire::DialRequest dial =
      dialing::BuildDialRequest(dial_config, alice_.public_key, bob_.public_key, rng_);
  uint64_t dial_round = coord::kDialingRoundBase;
  auto dial_onion = crypto::OnionWrap(chain_->public_keys(), dial_round, dial.Serialize(), rng_);
  auto dial_future =
      scheduler.SubmitDialing(dial_round, {dial_onion.data}, dial_config.total_drops());

  Chain::DialingResult dial_result = dial_future.get();
  auto callers = dialing::ScanInvitations(bob_, dial_result.table.Drop(0));
  ASSERT_EQ(callers.size(), 1u);

  CheckDelivery(conv, conv_future.get().responses);
  EXPECT_EQ(scheduler.stats().dialing_rounds_completed, 1u);
}

}  // namespace
}  // namespace vuvuzela::mixnet
