// Adversarial privacy suite, part 1: the ε/δ budget accountant.
//
// Unit tests pin the accountant's arithmetic to src/noise/privacy.h (per-round
// Theorem 1 / §6.5 bounds, Theorem 2 advanced composition, sequential
// composition across the two round classes), and the integration tests run a
// real coordinator + loopback-hop deployment with a deliberately tight budget
// to prove refusal is enforced *before* announcement and surfaced through the
// result, the global metrics registry, and the /metrics HTTP endpoint.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/net/tcp.h"
#include "src/noise/accountant.h"
#include "src/noise/privacy.h"
#include "src/obs/registry.h"
#include "src/transport/coord_daemon.h"
#include "src/transport/hop_chain.h"

namespace vuvuzela {
namespace {

constexpr uint64_t kSeed = 0xbadb1a5;

// Paper-flavored parameters small enough to keep deterministic noise cheap:
// µ = 10, b = 1.5 gives ε = 4/b ≈ 2.67 and δ = e^{(2-µ)/b} ≈ 4.8e-3 per
// conversation round — a budget of a few composed rounds is easy to pick.
const noise::LaplaceParams kNoise{10.0, 1.5};

noise::BudgetAccountantConfig Config(double epsilon_budget, double delta_budget) {
  noise::BudgetAccountantConfig config;
  config.conversation_noise = kNoise;
  config.dialing_noise = kNoise;
  config.epsilon_budget = epsilon_budget;
  config.delta_budget = delta_budget;
  return config;
}

TEST(BudgetAccountant, PerRoundBoundsMatchTheorems) {
  noise::BudgetAccountant accountant(Config(1000.0, 0.5));
  noise::PrivacyBound conversation = noise::ConversationRound(kNoise);
  noise::PrivacyBound dialing = noise::DialingRound(kNoise);
  EXPECT_DOUBLE_EQ(accountant.conversation_bound().epsilon, conversation.epsilon);
  EXPECT_DOUBLE_EQ(accountant.conversation_bound().delta, conversation.delta);
  EXPECT_DOUBLE_EQ(accountant.dialing_bound().epsilon, dialing.epsilon);
  EXPECT_DOUBLE_EQ(accountant.dialing_bound().delta, dialing.delta);
  // Nothing admitted yet: nothing spent.
  EXPECT_DOUBLE_EQ(accountant.Spent().epsilon, 0.0);
  EXPECT_DOUBLE_EQ(accountant.Spent().delta, 0.0);
}

TEST(BudgetAccountant, ChargesUnderAdvancedComposition) {
  constexpr double kDeltaBudget = 0.5;
  noise::BudgetAccountant accountant(Config(1000.0, kDeltaBudget));
  const double slack = kDeltaBudget / 4.0;  // the documented default
  for (uint64_t k = 1; k <= 5; ++k) {
    ASSERT_TRUE(accountant.AdmitConversation());
    noise::PrivacyBound expected =
        noise::Compose(noise::ConversationRound(kNoise), k, slack);
    EXPECT_DOUBLE_EQ(accountant.Spent().epsilon, expected.epsilon) << "k=" << k;
    EXPECT_DOUBLE_EQ(accountant.Spent().delta, expected.delta) << "k=" << k;
  }
  EXPECT_EQ(accountant.conversation_rounds(), 5u);
  EXPECT_EQ(accountant.rounds_refused(), 0u);
}

TEST(BudgetAccountant, SumsConversationAndDialingClasses) {
  constexpr double kDeltaBudget = 0.5;
  noise::BudgetAccountant accountant(Config(1000.0, kDeltaBudget));
  const double slack = kDeltaBudget / 4.0;
  ASSERT_TRUE(accountant.AdmitConversation());
  ASSERT_TRUE(accountant.AdmitConversation());
  ASSERT_TRUE(accountant.AdmitDialing());
  noise::PrivacyBound conversation =
      noise::Compose(noise::ConversationRound(kNoise), 2, slack);
  noise::PrivacyBound dialing = noise::Compose(noise::DialingRound(kNoise), 1, slack);
  EXPECT_DOUBLE_EQ(accountant.Spent().epsilon, conversation.epsilon + dialing.epsilon);
  EXPECT_DOUBLE_EQ(accountant.Spent().delta, conversation.delta + dialing.delta);
}

TEST(BudgetAccountant, RefusesAtExhaustionAndStaysMonotone) {
  constexpr double kEpsilonBudget = 100.0;
  constexpr double kDeltaBudget = 0.1;
  noise::BudgetAccountant accountant(Config(kEpsilonBudget, kDeltaBudget));
  uint64_t expected_rounds =
      noise::MaxRounds(noise::ConversationRound(kNoise), kEpsilonBudget, kDeltaBudget,
                       kDeltaBudget / 4.0);
  ASSERT_GT(expected_rounds, 0u);

  uint64_t admitted = 0;
  while (accountant.AdmitConversation()) {
    ++admitted;
    ASSERT_LT(admitted, 10000u) << "budget never exhausted";
  }
  EXPECT_EQ(admitted, expected_rounds);
  EXPECT_EQ(accountant.conversation_rounds(), expected_rounds);
  // Refusals never charge; the spent bound stays within budget forever.
  EXPECT_LE(accountant.Spent().epsilon, kEpsilonBudget);
  EXPECT_LE(accountant.Spent().delta, kDeltaBudget);
  // Monotone: once refused, refused for good — and every refusal is counted.
  EXPECT_FALSE(accountant.AdmitConversation());
  EXPECT_FALSE(accountant.AdmitConversation());
  EXPECT_EQ(accountant.rounds_refused(), 3u);
  EXPECT_EQ(accountant.conversation_rounds(), expected_rounds);
}

TEST(BudgetAccountant, NoiseBelowBoundRefusesTheFirstRound) {
  // A deployment whose single-round ε already exceeds the budget — the
  // "configured noise violates the bound" case — admits nothing: the k = 1
  // composition is the per-round check.
  noise::BudgetAccountant accountant(Config(1.0, 0.5));
  ASSERT_GT(noise::ConversationRound(kNoise).epsilon, 1.0);
  EXPECT_FALSE(accountant.AdmitConversation());
  EXPECT_EQ(accountant.conversation_rounds(), 0u);
  EXPECT_EQ(accountant.rounds_refused(), 1u);
  EXPECT_DOUBLE_EQ(accountant.Spent().epsilon, 0.0);
}

TEST(BudgetAccountant, DegenerateConfigurationThrows) {
  // Zero/negative Laplace scale means "no noise" — that must fail loudly at
  // construction, not silently account for a guarantee that does not exist.
  noise::BudgetAccountantConfig no_noise = Config(10.0, 0.5);
  no_noise.conversation_noise = {0.0, 0.0};
  EXPECT_THROW(noise::BudgetAccountant{no_noise}, std::invalid_argument);

  noise::BudgetAccountantConfig no_epsilon = Config(0.0, 0.5);
  EXPECT_THROW(noise::BudgetAccountant{no_epsilon}, std::invalid_argument);

  noise::BudgetAccountantConfig no_delta = Config(10.0, 0.0);
  EXPECT_THROW(noise::BudgetAccountant{no_delta}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Integration: a real coordinator over loopback hop daemons.

mixnet::ChainConfig BudgetChainConfig() {
  mixnet::ChainConfig config;
  config.num_servers = 2;
  config.conversation_noise = {.params = kNoise, .deterministic = true};
  config.dialing_noise = {.params = kNoise, .deterministic = true};
  config.parallel = false;
  return config;
}

transport::CoordDaemonConfig BudgetCoordConfig(const transport::LoopbackChain& chain,
                                               uint64_t total_rounds) {
  transport::CoordDaemonConfig config;
  for (size_t i = 0; i < chain.size(); ++i) {
    config.hops.push_back({"127.0.0.1", chain.port(i)});
  }
  config.scheduler.max_in_flight = 2;
  config.schedule.conversation_rounds_per_dialing_round = 1000;  // conversation only
  config.total_rounds = total_rounds;
  config.admission_window_seconds = 0.01;
  config.synthetic_users = 6;
  config.key_seed = kSeed;
  return config;
}

// Regression for the tentpole guarantee: the coordinator refuses — before
// announcement — every round past the budget, the refusals surface in the
// result and in vuvuzela_privacy_rounds_refused_total, and the spent gauges
// export the composed bound in fixed-point (micro-ε / nano-δ).
TEST(PrivacyBudgetIntegration, CoordinatorRefusesRoundsPastBudget) {
  constexpr double kEpsilonBudget = 100.0;
  constexpr double kDeltaBudget = 0.1;
  constexpr uint64_t kTotalRounds = 6;
  uint64_t admitted_rounds =
      noise::MaxRounds(noise::ConversationRound(kNoise), kEpsilonBudget, kDeltaBudget,
                       kDeltaBudget / 4.0);
  ASSERT_GT(admitted_rounds, 0u);
  ASSERT_LT(admitted_rounds, kTotalRounds);  // the budget must actually bind

  auto chain = transport::LoopbackChain::Start(BudgetChainConfig(), kSeed);
  ASSERT_NE(chain, nullptr);

  auto& registry = obs::Registry::Global();
  uint64_t refused_before =
      registry.GetCounter("vuvuzela_privacy_rounds_refused_total", "")->Value();

  transport::CoordDaemonConfig config = BudgetCoordConfig(*chain, kTotalRounds);
  config.budget.conversation_noise = kNoise;
  config.budget.dialing_noise = kNoise;
  config.budget.epsilon_budget = kEpsilonBudget;
  config.budget.delta_budget = kDeltaBudget;
  config.metrics_port = 0;

  transport::CoordinatorDaemon coordinator(std::move(config));
  ASSERT_TRUE(coordinator.Start());

  // Scrape /metrics while the deployment is live — the ops-facing surface.
  uint16_t metrics_port = coordinator.metrics_port();
  ASSERT_NE(metrics_port, 0u);

  transport::CoordDaemonResult result = coordinator.Run();

  EXPECT_EQ(result.conversation_rounds_completed, admitted_rounds);
  EXPECT_EQ(result.rounds_refused, kTotalRounds - admitted_rounds);
  EXPECT_EQ(result.rounds_abandoned, 0u);
  // The spent bound is what the accountant composed, and it respects the
  // budget by construction.
  EXPECT_GT(result.epsilon_spent, 0.0);
  EXPECT_LE(result.epsilon_spent, kEpsilonBudget);
  EXPECT_GT(result.delta_spent, 0.0);
  EXPECT_LE(result.delta_spent, kDeltaBudget);

  // Surfaced in the global registry the /metrics endpoint renders.
  uint64_t refused_after =
      registry.GetCounter("vuvuzela_privacy_rounds_refused_total", "")->Value();
  EXPECT_EQ(refused_after - refused_before, result.rounds_refused);
  EXPECT_EQ(registry.GetGauge("vuvuzela_privacy_epsilon_spent_micro", "")->Value(),
            static_cast<int64_t>(result.epsilon_spent * 1e6 + 0.5));
  EXPECT_GT(registry.GetGauge("vuvuzela_privacy_delta_spent_nano", "")->Value(), 0);
}

// A budget generous enough for the whole schedule refuses nothing — the
// accountant must not tax healthy deployments.
TEST(PrivacyBudgetIntegration, GenerousBudgetRefusesNothing) {
  constexpr uint64_t kTotalRounds = 4;
  auto chain = transport::LoopbackChain::Start(BudgetChainConfig(), kSeed);
  ASSERT_NE(chain, nullptr);

  transport::CoordDaemonConfig config = BudgetCoordConfig(*chain, kTotalRounds);
  config.budget.conversation_noise = kNoise;
  config.budget.dialing_noise = kNoise;
  config.budget.epsilon_budget = 1e6;
  config.budget.delta_budget = 0.5;

  transport::CoordinatorDaemon coordinator(std::move(config));
  ASSERT_TRUE(coordinator.Start());
  transport::CoordDaemonResult result = coordinator.Run();
  EXPECT_EQ(result.conversation_rounds_completed, kTotalRounds);
  EXPECT_EQ(result.rounds_refused, 0u);
  EXPECT_GT(result.epsilon_spent, 0.0);
}

// An armed accountant with degenerate noise parameters must fail Start():
// announcing even one round under a nonexistent guarantee is the failure the
// tentpole exists to prevent.
TEST(PrivacyBudgetIntegration, DegenerateBudgetFailsStart) {
  transport::CoordDaemonConfig config;
  config.hops.push_back({"127.0.0.1", 1});  // never dialed: Start() fails first
  config.budget.conversation_noise = {0.0, 0.0};
  config.budget.dialing_noise = kNoise;
  config.budget.epsilon_budget = 10.0;
  config.budget.delta_budget = 0.1;
  transport::CoordinatorDaemon coordinator(std::move(config));
  EXPECT_FALSE(coordinator.Start());
}

}  // namespace
}  // namespace vuvuzela
