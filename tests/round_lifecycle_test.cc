// The explicit per-round state machine (engine::RoundLifecycle): transition
// validation, retry accounting, and the scheduler driving the pipeline
// phases in order.

#include <gtest/gtest.h>

#include <mutex>
#include <stdexcept>
#include <vector>

#include "src/conversation/protocol.h"
#include "src/engine/round_lifecycle.h"
#include "src/engine/round_scheduler.h"
#include "src/mixnet/chain.h"
#include "src/util/random.h"

namespace vuvuzela::engine {
namespace {

TEST(RoundLifecycle, ConversationRoundWalksThePipelinePhases) {
  std::vector<RoundPhase> seen;
  RoundLifecycle lifecycle([&](const RoundStatus& status) { seen.push_back(status.phase); });

  lifecycle.Announce(1, wire::RoundType::kConversation);
  lifecycle.BeginAttempt(1, wire::RoundType::kConversation);
  lifecycle.EnterForward(1, 0);
  lifecycle.EnterForward(1, 1);
  lifecycle.EnterExchange(1);
  lifecycle.EnterBackward(1, 1);
  lifecycle.EnterBackward(1, 0);
  lifecycle.Complete(1);

  std::vector<RoundPhase> expected = {
      RoundPhase::kAnnounced, RoundPhase::kSubmitting, RoundPhase::kForward,
      RoundPhase::kForward,   RoundPhase::kExchange,   RoundPhase::kBackward,
      RoundPhase::kBackward,  RoundPhase::kComplete,
  };
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(lifecycle.counters().announced, 1u);
  EXPECT_EQ(lifecycle.counters().completed, 1u);
  EXPECT_EQ(lifecycle.live_rounds(), 0u);  // terminal rounds are dropped
  EXPECT_FALSE(lifecycle.Status(1).has_value());
}

TEST(RoundLifecycle, DialingRoundCompletesOffTheExchange) {
  RoundLifecycle lifecycle;
  lifecycle.BeginAttempt(coord::kDialingRoundBase, wire::RoundType::kDialing);
  lifecycle.EnterForward(coord::kDialingRoundBase, 0);
  lifecycle.EnterExchange(coord::kDialingRoundBase);
  lifecycle.Complete(coord::kDialingRoundBase);
  EXPECT_EQ(lifecycle.counters().completed, 1u);
}

TEST(RoundLifecycle, SingleHopChainEntersExchangeStraightFromSubmission) {
  RoundLifecycle lifecycle;
  lifecycle.BeginAttempt(5, wire::RoundType::kConversation);
  lifecycle.EnterExchange(5);
  lifecycle.Complete(5);
  EXPECT_EQ(lifecycle.counters().completed, 1u);
}

TEST(RoundLifecycle, InvalidTransitionsThrow) {
  RoundLifecycle lifecycle;
  lifecycle.Announce(1, wire::RoundType::kConversation);
  // Straight to a pipeline phase without submission.
  EXPECT_THROW(lifecycle.EnterForward(1, 0), std::logic_error);
  EXPECT_THROW(lifecycle.Complete(1), std::logic_error);
  // Duplicate announcement of a live round.
  EXPECT_THROW(lifecycle.Announce(1, wire::RoundType::kConversation), std::logic_error);
  // Unknown rounds are rejected loudly.
  EXPECT_THROW(lifecycle.EnterExchange(99), std::logic_error);
  // Backward must descend, forward must advance.
  lifecycle.BeginAttempt(1, wire::RoundType::kConversation);
  lifecycle.EnterForward(1, 0);
  EXPECT_THROW(lifecycle.EnterForward(1, 0), std::logic_error);
  lifecycle.EnterExchange(1);
  lifecycle.EnterBackward(1, 1);
  EXPECT_THROW(lifecycle.EnterBackward(1, 1), std::logic_error);
  // Terminal states accept nothing further.
  lifecycle.Abandon(1, "test");
  EXPECT_THROW(lifecycle.Complete(1), std::logic_error);
  EXPECT_EQ(lifecycle.counters().abandoned, 1u);
}

TEST(RoundLifecycle, RetryingResumesWithIncrementedAttempt) {
  RoundLifecycle lifecycle;
  lifecycle.Announce(7, wire::RoundType::kConversation);
  lifecycle.BeginAttempt(7, wire::RoundType::kConversation);
  lifecycle.EnterForward(7, 0);
  lifecycle.Retrying(7, "hop died");

  auto status = lifecycle.Status(7);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->phase, RoundPhase::kRetrying);
  EXPECT_EQ(status->attempt, 1u);
  EXPECT_EQ(status->last_error, "hop died");

  // Re-submission: same round, attempt ticks, retry counter ticks.
  lifecycle.BeginAttempt(7, wire::RoundType::kConversation);
  status = lifecycle.Status(7);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->phase, RoundPhase::kSubmitting);
  EXPECT_EQ(status->attempt, 2u);
  EXPECT_EQ(lifecycle.counters().retries, 1u);

  // Exhausted budget: Abandoned is terminal.
  lifecycle.EnterForward(7, 0);
  lifecycle.Abandon(7, "hop never came back");
  EXPECT_EQ(lifecycle.counters().abandoned, 1u);
  EXPECT_EQ(lifecycle.live_rounds(), 0u);
  // A live round cannot be re-submitted without a failure in between.
  lifecycle.BeginAttempt(8, wire::RoundType::kConversation);
  EXPECT_THROW(lifecycle.BeginAttempt(8, wire::RoundType::kConversation), std::logic_error);
}

// The scheduler drives the shared lifecycle through the real pipeline: every
// round must walk Submitting → Forward(0..n-2) → Exchange → Backward(n-2..0)
// → Complete, per-round, whatever the cross-round interleaving.
TEST(RoundLifecycle, SchedulerDrivesPhasesInOrder) {
  util::Xoshiro256Rng rng(99);
  mixnet::ChainConfig config;
  config.num_servers = 3;
  config.conversation_noise = {.params = {2.0, 1.0}, .deterministic = true};
  config.dialing_noise = {.params = {2.0, 1.0}, .deterministic = true};
  config.parallel = false;
  mixnet::Chain chain = mixnet::Chain::Create(config, rng);

  std::mutex mutex;
  std::map<uint64_t, std::vector<RoundStatus>> transitions;
  RoundLifecycle lifecycle([&](const RoundStatus& status) {
    std::lock_guard<std::mutex> lock(mutex);
    transitions[status.round].push_back(status);
  });

  auto user = crypto::X25519KeyPair::Generate(rng);
  {
    SchedulerConfig scheduler_config;
    scheduler_config.max_in_flight = 3;
    scheduler_config.lifecycle = &lifecycle;
    RoundScheduler scheduler(chain, scheduler_config);
    for (uint64_t round = 1; round <= 5; ++round) {
      auto request = conversation::BuildFakeExchangeRequest(user, round, rng);
      scheduler.SubmitConversation(
          round, {crypto::OnionWrap(chain.public_keys(), round, request.Serialize(), rng).data});
    }
    scheduler.Drain();
  }

  EXPECT_EQ(lifecycle.counters().completed, 5u);
  EXPECT_EQ(lifecycle.counters().abandoned, 0u);
  for (uint64_t round = 1; round <= 5; ++round) {
    const auto& seen = transitions[round];
    std::vector<RoundPhase> phases;
    for (const auto& status : seen) {
      phases.push_back(status.phase);
    }
    std::vector<RoundPhase> expected = {
        RoundPhase::kSubmitting, RoundPhase::kForward,  RoundPhase::kForward,
        RoundPhase::kExchange,   RoundPhase::kBackward, RoundPhase::kBackward,
        RoundPhase::kComplete,
    };
    EXPECT_EQ(phases, expected) << "round " << round;
  }
}

}  // namespace
}  // namespace vuvuzela::engine
