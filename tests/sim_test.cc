// Simulation-harness tests: workload generator properties, cost model
// sanity, and deployment edge cases (offline clients, round-state hygiene).

#include <gtest/gtest.h>

#include <set>

#include "src/conversation/protocol.h"
#include "src/crypto/onion.h"
#include "src/sim/cost_model.h"
#include "src/sim/deployment.h"
#include "src/sim/workload.h"

namespace vuvuzela::sim {
namespace {

std::vector<crypto::X25519PublicKey> TestChain(size_t n, uint64_t seed) {
  util::Xoshiro256Rng rng(seed);
  std::vector<crypto::X25519PublicKey> chain;
  for (size_t i = 0; i < n; ++i) {
    chain.push_back(crypto::X25519KeyPair::Generate(rng).public_key);
  }
  return chain;
}

TEST(Workload, GeneratesOnePerUser) {
  auto chain = TestChain(3, 1);
  WorkloadConfig config{.num_users = 100, .pairing_fraction = 1.0, .seed = 7, .parallel = false};
  auto onions = GenerateConversationWorkload(config, chain, 1);
  EXPECT_EQ(onions.size(), 100u);
  size_t expected = crypto::OnionRequestSize(wire::kExchangeRequestSize, 3);
  for (const auto& onion : onions) {
    EXPECT_EQ(onion.size(), expected);
  }
}

TEST(Workload, DeterministicForSeed) {
  auto chain = TestChain(2, 2);
  WorkloadConfig config{.num_users = 20, .pairing_fraction = 0.5, .seed = 9, .parallel = false};
  auto a = GenerateConversationWorkload(config, chain, 1);
  auto b = GenerateConversationWorkload(config, chain, 1);
  EXPECT_EQ(a, b);
  config.seed = 10;
  auto c = GenerateConversationWorkload(config, chain, 1);
  EXPECT_NE(a, c);
}

TEST(Workload, ParallelMatchesSerial) {
  auto chain = TestChain(2, 3);
  WorkloadConfig serial{.num_users = 64, .pairing_fraction = 1.0, .seed = 5, .parallel = false};
  WorkloadConfig parallel = serial;
  parallel.parallel = true;
  EXPECT_EQ(GenerateConversationWorkload(serial, chain, 2),
            GenerateConversationWorkload(parallel, chain, 2));
}

TEST(Workload, PairedUsersShareDeadDrops) {
  // Run the generated workload through a real chain and check the histogram:
  // with pairing_fraction=1, every two users meet in one drop.
  util::Xoshiro256Rng rng(11);
  mixnet::ChainConfig chain_config;
  chain_config.num_servers = 2;
  chain_config.conversation_noise = {.params = {0.0, 1.0}, .deterministic = true};
  chain_config.parallel = false;
  mixnet::Chain chain = mixnet::Chain::Create(chain_config, rng);

  WorkloadConfig config{.num_users = 40, .pairing_fraction = 1.0, .seed = 13, .parallel = false};
  auto onions = GenerateConversationWorkload(config, chain.public_keys(), 1);
  auto result = chain.RunConversationRound(1, std::move(onions));
  EXPECT_EQ(result.histogram.pairs, 20u);
  EXPECT_EQ(result.histogram.singles, 0u);
  EXPECT_EQ(result.messages_exchanged, 40u);
}

TEST(Workload, IdleUsersGetUniqueDrops) {
  util::Xoshiro256Rng rng(12);
  mixnet::ChainConfig chain_config;
  chain_config.num_servers = 2;
  chain_config.conversation_noise = {.params = {0.0, 1.0}, .deterministic = true};
  chain_config.parallel = false;
  mixnet::Chain chain = mixnet::Chain::Create(chain_config, rng);

  WorkloadConfig config{.num_users = 50, .pairing_fraction = 0.0, .seed = 17, .parallel = false};
  auto onions = GenerateConversationWorkload(config, chain.public_keys(), 1);
  auto result = chain.RunConversationRound(1, std::move(onions));
  EXPECT_EQ(result.histogram.singles, 50u);
  EXPECT_EQ(result.histogram.pairs, 0u);
}

TEST(Workload, DialingFractionRespected) {
  util::Xoshiro256Rng rng(14);
  mixnet::ChainConfig chain_config;
  chain_config.num_servers = 2;
  chain_config.dialing_noise = {.params = {0.0, 1.0}, .deterministic = true};
  chain_config.parallel = false;
  mixnet::Chain chain = mixnet::Chain::Create(chain_config, rng);

  dialing::RoundConfig dial_config{.num_real_drops = 4};
  WorkloadConfig config{.num_users = 100, .pairing_fraction = 1.0, .seed = 19,
                        .parallel = false};
  auto onions = GenerateDialingWorkload(config, chain.public_keys(), 1, dial_config, 0.25);
  auto result = chain.RunDialingRound(1, std::move(onions), dial_config.total_drops());

  auto sizes = result.table.DropSizes();
  uint64_t real = 0;
  for (uint32_t d = 0; d < dial_config.num_real_drops; ++d) {
    real += sizes[d];
  }
  EXPECT_EQ(real, 25u);  // 25% of 100 users dialed
  EXPECT_EQ(sizes[dial_config.noop_index()], 75u);
}

TEST(CostModel, MeasuredConstantsArePositive) {
  CostModel model = CostModel::Measure(512);
  EXPECT_GT(model.seconds_per_unwrap, 0.0);
  EXPECT_GT(model.seconds_per_noise_layer_wrap, 0.0);
  EXPECT_GT(model.seconds_per_response_seal, 0.0);
  // Loose floor: sanitizer builds on a saturated CI machine still clear it,
  // while a broken measurement (zero/negative rate) cannot.
  EXPECT_GT(model.dh_ops_per_sec, 50.0);
  // Response sealing is symmetric crypto only: far cheaper than a DH unwrap.
  EXPECT_LT(model.seconds_per_response_seal, model.seconds_per_unwrap);
}

TEST(CostModel, LatencyMonotoneInUsersAndNoise) {
  CostModel model = CostModel::Measure(512);
  double l1 = model.ConversationRoundLatency(10, 3, 300000);
  double l2 = model.ConversationRoundLatency(1000000, 3, 300000);
  double l3 = model.ConversationRoundLatency(2000000, 3, 300000);
  EXPECT_LT(l1, l2);
  EXPECT_LT(l2, l3);
  EXPECT_LT(model.ConversationRoundLatency(1000000, 3, 100000), l2);
}

TEST(CostModel, LatencySuperlinearInServers) {
  CostModel model = CostModel::Measure(512);
  double s1 = model.ConversationRoundLatency(1000000, 1, 300000);
  double s3 = model.ConversationRoundLatency(1000000, 3, 300000);
  double s6 = model.ConversationRoundLatency(1000000, 6, 300000);
  // Quadratic-ish: the 6-server/3-server ratio exceeds the linear ratio 2.
  EXPECT_GT(s6 / s3, 2.0);
  EXPECT_GT(s3, s1);
}

TEST(CostModel, LowerBoundBelowFullLatency) {
  CostModel model = CostModel::Measure(512);
  double bound = model.ConversationCryptoLowerBound(2000000, 3, 300000);
  double full = model.ConversationRoundLatency(2000000, 3, 300000);
  EXPECT_LT(bound, full);
  // §8.2: the full protocol is within 2x of the crypto lower bound.
  EXPECT_LT(full / bound, 2.5);
}

TEST(CostModel, PipelinedThroughputExceedsSequential) {
  CostModel model = CostModel::Measure(512);
  double latency = model.ConversationRoundLatency(1000000, 3, 300000);
  double sequential = 1000000.0 / latency;
  double pipelined = model.ConversationPipelinedThroughput(1000000, 3, 300000);
  EXPECT_GT(pipelined, sequential);
}

TEST(Deployment, OfflineClientMissesRoundThenRecovers) {
  DeploymentConfig config;
  config.num_servers = 2;
  config.conversation_noise = {.params = {2.0, 1.0}, .deterministic = true};
  config.dialing_noise = {.params = {2.0, 1.0}, .deterministic = true};
  config.seed = 31;
  Deployment dep(config);
  size_t alice = dep.AddClient();
  size_t bob = dep.AddClient();

  dep.client(alice).Dial(dep.client(bob).public_key());
  dep.RunDialingRound();
  dep.client(bob).AcceptCall(dep.client(bob).TakeIncomingCalls()[0].caller);

  util::Bytes payload = {'x'};
  dep.client(alice).SendMessage(dep.client(bob).public_key(), payload);

  // Bob is offline for the round carrying the message.
  dep.SetClientOnline(bob, false);
  dep.RunConversationRound();
  EXPECT_TRUE(dep.client(bob).TakeReceivedMessages().empty());

  // Back online: the retransmission layer redelivers.
  dep.SetClientOnline(bob, true);
  bool delivered = false;
  for (int r = 0; r < 6 && !delivered; ++r) {
    dep.RunConversationRound();
    for (auto& m : dep.client(bob).TakeReceivedMessages()) {
      EXPECT_EQ(m.payload, payload);
      delivered = true;
    }
  }
  EXPECT_TRUE(delivered);
}

TEST(Deployment, OfflineDialerQueuesDial) {
  DeploymentConfig config;
  config.num_servers = 2;
  config.conversation_noise = {.params = {2.0, 1.0}, .deterministic = true};
  config.dialing_noise = {.params = {2.0, 1.0}, .deterministic = true};
  config.seed = 37;
  Deployment dep(config);
  size_t alice = dep.AddClient();
  size_t bob = dep.AddClient();

  dep.client(alice).Dial(dep.client(bob).public_key());
  dep.SetClientOnline(alice, false);
  dep.RunDialingRound();
  EXPECT_TRUE(dep.client(bob).TakeIncomingCalls().empty());

  dep.SetClientOnline(alice, true);
  dep.RunDialingRound();
  EXPECT_EQ(dep.client(bob).TakeIncomingCalls().size(), 1u);
}

TEST(Deployment, RoundCountersAdvance) {
  DeploymentConfig config;
  config.num_servers = 1;
  config.conversation_noise = {.params = {1.0, 1.0}, .deterministic = true};
  config.dialing_noise = {.params = {1.0, 1.0}, .deterministic = true};
  Deployment dep(config);
  dep.AddClient();
  dep.RunConversationRound();
  dep.RunConversationRound();
  dep.RunDialingRound();
  EXPECT_EQ(dep.conversation_rounds_run(), 2u);
  EXPECT_EQ(dep.dialing_rounds_run(), 1u);
}

TEST(MixServerHygiene, ExpireRoundsDropsAbandonedState) {
  util::Xoshiro256Rng rng(41);
  mixnet::ChainConfig config;
  config.num_servers = 2;
  config.conversation_noise = {.params = {1.0, 1.0}, .deterministic = true};
  config.parallel = false;
  mixnet::Chain chain = mixnet::Chain::Create(config, rng);

  // Forward three rounds without ever running the return pass (a downstream
  // DoS, §2.3).
  for (uint64_t round = 1; round <= 3; ++round) {
    auto user = crypto::X25519KeyPair::Generate(rng);
    auto request = conversation::BuildFakeExchangeRequest(user, round, rng);
    auto onion = crypto::OnionWrap(chain.public_keys(), round, request.Serialize(), rng);
    chain.server(0).ForwardConversation(round, {onion.data});
  }
  EXPECT_EQ(chain.server(0).pending_rounds(), 3u);

  chain.server(0).ExpireRounds(/*newest_round=*/3, /*keep=*/1);
  EXPECT_EQ(chain.server(0).pending_rounds(), 2u);  // rounds 2 and 3 kept
  EXPECT_THROW(chain.server(0).BackwardConversation(1, std::vector<util::Bytes>{}),
               std::logic_error);
}

}  // namespace
}  // namespace vuvuzela::sim
