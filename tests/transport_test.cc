// Hop transport subsystem tests: backend conformance (LocalTransport vs
// loopback TcpTransport must produce byte-identical rounds), dead-hop
// timeout behavior, daemon robustness, and the multi-process coordinator.

#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "src/engine/round_scheduler.h"
#include "src/sim/workload.h"
#include "src/transport/coord_daemon.h"
#include "src/transport/hop_chain.h"
#include "src/util/random.h"

namespace vuvuzela::transport {
namespace {

mixnet::ChainConfig TestChainConfig() {
  mixnet::ChainConfig config;
  config.num_servers = 3;
  config.conversation_noise = {.params = {3.0, 1.0}, .deterministic = true};
  config.dialing_noise = {.params = {2.0, 1.0}, .deterministic = true};
  config.parallel = false;
  config.exchange_shards = 1;
  return config;
}

constexpr uint64_t kKeySeed = 0x5eed;
constexpr uint64_t kConversationRounds = 4;
constexpr uint64_t kUsers = 10;
constexpr uint32_t kDialDrops = 2;
// Small chunk budget so the conformance workload exercises multi-chunk
// streaming on every pass, not just the single-frame fast path.
constexpr size_t kTestChunkPayload = 2048;

struct Workload {
  std::vector<std::vector<util::Bytes>> conversation_batches;
  std::vector<util::Bytes> dial_batch;
};

Workload MakeWorkload() {
  Workload workload;
  auto keys = DeriveChainKeys(kKeySeed, TestChainConfig().num_servers);
  for (uint64_t round = 1; round <= kConversationRounds; ++round) {
    sim::WorkloadConfig config{
        .num_users = kUsers, .pairing_fraction = 1.0, .seed = 7 + round, .parallel = false};
    workload.conversation_batches.push_back(
        sim::GenerateConversationWorkload(config, keys.public_keys, round));
  }
  sim::WorkloadConfig config{
      .num_users = kUsers, .pairing_fraction = 1.0, .seed = 99, .parallel = false};
  dialing::RoundConfig dial_config{.num_real_drops = kDialDrops - 1};
  workload.dial_batch = sim::GenerateDialingWorkload(
      config, keys.public_keys, coord::kDialingRoundBase, dial_config, 0.5);
  return workload;
}

// Everything adversary- and client-visible about a run: used to assert two
// backends are byte-identical.
struct RunOutcome {
  std::vector<std::vector<util::Bytes>> responses;
  std::vector<uint64_t> singles, pairs, exchanged;
  std::vector<uint64_t> dial_drop_sizes;
  std::vector<std::vector<wire::Invitation>> dial_drops;
};

RunOutcome RunThroughScheduler(std::vector<std::unique_ptr<HopTransport>> hops,
                               const Workload& workload) {
  engine::RoundScheduler scheduler(std::move(hops), {.max_in_flight = 3});
  std::vector<std::future<mixnet::Chain::ConversationResult>> futures;
  for (uint64_t round = 1; round <= kConversationRounds; ++round) {
    futures.push_back(
        scheduler.SubmitConversation(round, workload.conversation_batches[round - 1]));
  }
  auto dial_future =
      scheduler.SubmitDialing(coord::kDialingRoundBase, workload.dial_batch, kDialDrops);
  scheduler.Drain();

  RunOutcome outcome;
  for (auto& future : futures) {
    mixnet::Chain::ConversationResult result = future.get();
    outcome.responses.push_back(std::move(result.responses));
    outcome.singles.push_back(result.histogram.singles);
    outcome.pairs.push_back(result.histogram.pairs);
    outcome.exchanged.push_back(result.messages_exchanged);
  }
  mixnet::Chain::DialingResult dial_result = dial_future.get();
  outcome.dial_drop_sizes = dial_result.table.DropSizes();
  for (uint32_t i = 0; i < dial_result.table.num_drops(); ++i) {
    outcome.dial_drops.push_back(dial_result.table.Drop(i));
  }
  return outcome;
}

enum class Backend { kLocal, kTcp };

RunOutcome RunBackend(Backend backend, const Workload& workload) {
  if (backend == Backend::kLocal) {
    auto servers = BuildMixServers(TestChainConfig(), DeriveChainKeys(kKeySeed, 3));
    return RunThroughScheduler(MakeLocalTransports(servers), workload);
  }
  auto chain = LoopbackChain::Start(TestChainConfig(), kKeySeed, kTestChunkPayload);
  EXPECT_NE(chain, nullptr);
  auto transports = chain->ConnectTransports(/*recv_timeout_ms=*/10000);
  EXPECT_EQ(transports.size(), 3u);
  return RunThroughScheduler(std::move(transports), workload);
}

class TransportConformanceTest : public ::testing::TestWithParam<Backend> {};

TEST_P(TransportConformanceTest, RunsPipelinedWorkload) {
  Workload workload = MakeWorkload();
  RunOutcome outcome = RunBackend(GetParam(), workload);
  ASSERT_EQ(outcome.responses.size(), kConversationRounds);
  for (uint64_t round = 0; round < kConversationRounds; ++round) {
    // Every client gets exactly one onion-sealed response back.
    EXPECT_EQ(outcome.responses[round].size(), kUsers);
    // All users are paired, so at least every real message is exchanged
    // (colliding noise requests can add to the count).
    EXPECT_GE(outcome.exchanged[round], kUsers);
    EXPECT_GE(outcome.pairs[round], kUsers / 2);
  }
  EXPECT_EQ(outcome.dial_drop_sizes.size(), kDialDrops);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformanceTest,
                         ::testing::Values(Backend::kLocal, Backend::kTcp),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kLocal ? "Local" : "LoopbackTcp";
                         });

TEST(TransportConformance, BackendsAreByteIdentical) {
  Workload workload = MakeWorkload();
  RunOutcome local = RunBackend(Backend::kLocal, workload);
  RunOutcome tcp = RunBackend(Backend::kTcp, workload);

  // Same key ceremony, same noise-RNG seeds, same stage ordering: the TCP
  // chain must reproduce the in-process chain bit for bit — responses,
  // observable histograms, exchange counts, and invitation drops.
  EXPECT_EQ(local.responses, tcp.responses);
  EXPECT_EQ(local.singles, tcp.singles);
  EXPECT_EQ(local.pairs, tcp.pairs);
  EXPECT_EQ(local.exchanged, tcp.exchanged);
  EXPECT_EQ(local.dial_drop_sizes, tcp.dial_drop_sizes);
  EXPECT_EQ(local.dial_drops, tcp.dial_drops);
}

// A hop that accepts the connection and consumes requests but never answers:
// the transport's receive deadline must fail the stage (and the round) with
// HopTimeoutError instead of wedging the stage worker forever.
TEST(TcpTransportFailure, DeadHopTimesOutTheRound) {
  auto listener = net::TcpListener::Listen(0);
  ASSERT_TRUE(listener.has_value());
  std::thread black_hole([&] {
    auto conn = listener->Accept();
    if (!conn) {
      return;
    }
    while (conn->RecvFrame()) {
    }
  });

  TcpTransportConfig config;
  config.port = listener->port();
  config.recv_timeout_ms = 100;
  auto transport = TcpTransport::Connect(config);
  ASSERT_NE(transport, nullptr);

  std::vector<std::unique_ptr<HopTransport>> hops;
  hops.push_back(std::move(transport));
  engine::RoundScheduler scheduler(std::move(hops), {.max_in_flight = 2});
  auto future = scheduler.SubmitConversation(1, {util::Bytes(16, 0xab)});
  try {
    future.get();
    FAIL() << "round against a dead hop completed";
  } catch (const HopTimeoutError&) {
  }
  scheduler.Drain();
  EXPECT_EQ(scheduler.stats().rounds_failed, 1u);
  // Shutdown (not Close) is the only listener call safe while the black-hole
  // thread may still be inside Accept; the destructor closes after the join.
  listener->Shutdown();
  black_hole.join();
}

// A hop that disappears (EOF) is a different error from one that stalls.
TEST(TcpTransportFailure, ClosedHopIsNotATimeout) {
  auto listener = net::TcpListener::Listen(0);
  ASSERT_TRUE(listener.has_value());
  std::thread closer([&] {
    auto conn = listener->Accept();
    // Close immediately: the transport sees EOF, not a deadline.
  });

  TcpTransportConfig config;
  config.port = listener->port();
  config.recv_timeout_ms = 2000;
  auto transport = TcpTransport::Connect(config);
  ASSERT_NE(transport, nullptr);
  closer.join();
  try {
    transport->ForwardConversation(1, {util::Bytes(16, 0xcd)}, nullptr);
    FAIL() << "forward pass against a closed hop succeeded";
  } catch (const HopTimeoutError&) {
    FAIL() << "EOF misreported as a timeout";
  } catch (const HopError&) {
  }
  // The connection is poisoned: later calls fail fast.
  EXPECT_FALSE(transport->connected());
}

// One malformed request must not take the hop daemon down: it reports
// kHopError and keeps serving the next coordinator connection.
TEST(HopDaemonRobustness, SurvivesMalformedBatchMessage) {
  auto chain = LoopbackChain::Start(TestChainConfig(), kKeySeed);
  ASSERT_NE(chain, nullptr);

  {
    auto raw = net::TcpConnection::Connect("127.0.0.1", chain->port(0));
    ASSERT_TRUE(raw.has_value());
    // A hop-op frame whose chunk payload is garbage.
    raw->SendFrame(net::Frame{net::FrameType::kHopForwardConversation, 3, {0xff, 0xff, 0xff}});
    auto reply = raw->RecvFrame();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, net::FrameType::kHopError);
  }

  // The daemon accepts a fresh connection and serves a real pass.
  auto transports = chain->ConnectTransports();
  ASSERT_EQ(transports.size(), 3u);
  Workload workload = MakeWorkload();
  auto batch =
      transports[0]->ForwardConversation(1, workload.conversation_batches[0], nullptr);
  EXPECT_GT(batch.size(), 0u);
}

// The coordinator process drives a synthetic multi-process deployment:
// conversation rounds interleaved with dialing rounds, K in flight, over
// loopback hop daemons.
TEST(CoordinatorDaemon, DrivesInterleavedRoundsOverLoopbackHops) {
  auto chain = LoopbackChain::Start(TestChainConfig(), kKeySeed);
  ASSERT_NE(chain, nullptr);

  CoordDaemonConfig config;
  for (size_t i = 0; i < chain->size(); ++i) {
    config.hops.push_back({"127.0.0.1", chain->port(i)});
  }
  config.scheduler.max_in_flight = 3;
  config.schedule.conversation_rounds_per_dialing_round = 3;
  config.total_rounds = 7;
  config.hop_timeout_ms = 10000;
  config.synthetic_users = 12;
  config.key_seed = kKeySeed;

  CoordinatorDaemon coordinator(std::move(config));
  ASSERT_TRUE(coordinator.Start());
  CoordDaemonResult result = coordinator.Run();
  EXPECT_EQ(result.conversation_rounds_completed + result.dialing_rounds_completed, 7u);
  EXPECT_GE(result.dialing_rounds_completed, 1u);
  EXPECT_EQ(result.rounds_abandoned, 0u);
  EXPECT_GT(result.messages_exchanged, 0u);
}

// Regression: the admission-window dedup map is keyed by round and must be
// pruned by round *expiry*, not round completion — with a dead hop abandoning
// every round, a long-running coordinator would otherwise accumulate one
// dedup record per announced round forever.
TEST(CoordinatorDaemon, PrunesAdmissionDedupForAbandonedRounds) {
  mixnet::ChainConfig config1 = TestChainConfig();
  config1.num_servers = 1;
  auto keys = DeriveChainKeys(kKeySeed, 1);

  // The only hop is a black hole: every announced round is abandoned.
  auto dead = net::TcpListener::Listen(0);
  ASSERT_TRUE(dead.has_value());
  std::thread black_hole([&] {
    while (auto conn = dead->Accept()) {
      while (conn->RecvFrame()) {
      }
    }
  });

  constexpr uint64_t kTotalRounds = 16;
  constexpr size_t kInFlight = 2;
  CoordDaemonConfig config;
  config.hops.push_back({"127.0.0.1", dead->port()});
  config.scheduler.max_in_flight = kInFlight;
  config.schedule.conversation_rounds_per_dialing_round = 1000;  // conversation only
  config.total_rounds = kTotalRounds;
  config.admission_window_seconds = 0.2;  // closes early once the client contributed
  config.hop_timeout_ms = 100;
  config.num_clients = 1;
  config.key_seed = kKeySeed;
  // This test is about dedup pruning under abandonment, not recovery: pin
  // the legacy abandon-on-first-failure policy so every round fails once.
  config.max_round_attempts = 1;
  config.reconnect.max_call_attempts = 1;

  CoordinatorDaemon coordinator(std::move(config));
  ASSERT_TRUE(coordinator.Start());

  // One client that answers every announcement with a (garbage) onion — it
  // only needs to exercise the admission window, not survive the mix chain.
  std::thread client([&] {
    auto conn = net::TcpConnection::Connect("127.0.0.1", coordinator.client_port());
    if (!conn) {
      return;
    }
    while (auto frame = conn->RecvFrame()) {
      if (frame->type == net::FrameType::kShutdown) {
        return;
      }
      if (frame->type != net::FrameType::kRoundAnnouncement) {
        continue;
      }
      auto announcement = wire::RoundAnnouncement::Parse(frame->payload);
      if (!announcement) {
        continue;
      }
      net::FrameType type = announcement->type == wire::RoundType::kConversation
                                ? net::FrameType::kConversationRequest
                                : net::FrameType::kDialRequest;
      conn->SendFrame(net::Frame{type, announcement->round, util::Bytes(416, 0xab)});
    }
  });

  CoordDaemonResult result = coordinator.Run();
  client.join();
  EXPECT_EQ(result.rounds_abandoned, kTotalRounds);

  // Despite every round being abandoned, dedup records are bounded by the
  // expiry window (the scheduler's derived keep = 2K + 2), not by the number
  // of rounds announced.
  constexpr uint64_t kKeep = 2 * kInFlight + 2;
  EXPECT_LE(coordinator.admission_dedup_rounds(), kKeep + 1);
  EXPECT_LT(coordinator.admission_dedup_rounds(), kTotalRounds);

  dead->Shutdown();
  black_hole.join();
}

// A dead hop in the chain: every round that reaches it is abandoned — counted,
// reclaimed, and the coordinator finishes instead of hanging.
TEST(CoordinatorDaemon, AbandonsRoundsStuckOnDeadHop) {
  // Hops 0 and 1 of a 3-server chain run for real; the last hop is a black
  // hole that accepts batches and never answers.
  mixnet::ChainConfig config3 = TestChainConfig();
  auto keys = DeriveChainKeys(kKeySeed, config3.num_servers);
  std::vector<std::unique_ptr<HopDaemon>> live;
  std::vector<std::thread> serve_threads;
  for (size_t i = 0; i < 2; ++i) {
    live.push_back(HopDaemon::Create({}, BuildMixServer(config3, keys, i)));
    ASSERT_NE(live.back(), nullptr);
    serve_threads.emplace_back([daemon = live.back().get()] { daemon->Serve(); });
  }

  auto dead = net::TcpListener::Listen(0);
  ASSERT_TRUE(dead.has_value());
  std::thread black_hole([&] {
    while (auto conn = dead->Accept()) {
      while (conn->RecvFrame()) {
      }
    }
  });

  CoordDaemonConfig config;
  config.hops.push_back({"127.0.0.1", live[0]->port()});
  config.hops.push_back({"127.0.0.1", live[1]->port()});
  config.hops.push_back({"127.0.0.1", dead->port()});  // last hop never answers
  config.scheduler.max_in_flight = 2;
  config.total_rounds = 3;
  config.hop_timeout_ms = 150;
  config.synthetic_users = 6;
  config.key_seed = kKeySeed;
  // Bounded abandonment is the subject here: disable recovery so each round
  // fails exactly once (the recovery paths get their own suite).
  config.max_round_attempts = 1;
  config.reconnect.max_call_attempts = 1;

  CoordinatorDaemon coordinator(std::move(config));
  ASSERT_TRUE(coordinator.Start());
  CoordDaemonResult result = coordinator.Run();
  EXPECT_EQ(result.rounds_abandoned, 3u);
  EXPECT_EQ(result.conversation_rounds_completed, 0u);

  dead->Shutdown();  // wakes the blocked Accept; safe cross-thread, Close is not
  black_hole.join();
  for (auto& daemon : live) {
    daemon->Stop();
  }
  for (auto& thread : serve_threads) {
    thread.join();
  }
}

}  // namespace
}  // namespace vuvuzela::transport
