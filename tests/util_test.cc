#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "src/util/bytes.h"
#include "src/util/random.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace vuvuzela::util {
namespace {

TEST(Hex, RoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001abff7f");
  EXPECT_EQ(HexDecode(hex), data);
}

TEST(Hex, EmptyInput) {
  EXPECT_EQ(HexEncode({}), "");
  EXPECT_TRUE(HexDecode("").empty());
}

TEST(Hex, UppercaseAccepted) { EXPECT_EQ(HexDecode("AB"), Bytes{0xab}); }

TEST(Hex, RejectsOddLength) { EXPECT_THROW(HexDecode("abc"), std::invalid_argument); }

TEST(Hex, RejectsNonHex) { EXPECT_THROW(HexDecode("zz"), std::invalid_argument); }

TEST(ConstantTimeEqual, Basics) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

TEST(SecureZero, Zeroes) {
  Bytes buf = {1, 2, 3, 4};
  SecureZero(buf);
  EXPECT_EQ(buf, Bytes(4, 0));
}

TEST(Concat, MultipleSpans) {
  Bytes a = {1, 2};
  Bytes b = {3};
  Bytes c = {4, 5, 6};
  EXPECT_EQ(Concat(a, b, c), (Bytes{1, 2, 3, 4, 5, 6}));
}

TEST(Endian, RoundTrips) {
  uint8_t buf[8];
  StoreLe64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(LoadLe64(buf), 0x0123456789abcdefULL);
  StoreBe64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(LoadBe64(buf), 0x0123456789abcdefULL);
  EXPECT_EQ(buf[0], 0x01);  // big-endian: most significant byte first
  StoreLe32(buf, 0xdeadbeef);
  EXPECT_EQ(LoadLe32(buf), 0xdeadbeefu);
  StoreBe32(buf, 0xdeadbeef);
  EXPECT_EQ(LoadBe32(buf), 0xdeadbeefu);
}

TEST(SystemRng, ProducesDistinctValues) {
  SystemRng rng;
  uint64_t a = rng.NextUint64();
  uint64_t b = rng.NextUint64();
  // Probability of collision is 2^-64; a failure here means the RNG is broken.
  EXPECT_NE(a, b);
}

TEST(SystemRng, FillsWholeBuffer) {
  SystemRng rng;
  Bytes buf(1024, 0);
  rng.Fill(buf);
  int zeros = 0;
  for (uint8_t x : buf) {
    zeros += (x == 0);
  }
  // Expected ~4 zero bytes out of 1024; 100 would indicate a short fill.
  EXPECT_LT(zeros, 100);
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256Rng a(42), b(42), c(43);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  Xoshiro256Rng a2(42);
  EXPECT_NE(a2.NextUint64(), c.NextUint64());
}

TEST(Xoshiro, UniformBoundedNoModuloBias) {
  Xoshiro256Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformUint64(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(Xoshiro, UniformBoundRejectsZero) {
  Xoshiro256Rng rng(7);
  EXPECT_THROW(rng.UniformUint64(0), std::invalid_argument);
}

TEST(Xoshiro, UniformDoubleInRange) {
  Xoshiro256Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.UniformDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, FillMatchesNextUint64Stream) {
  Xoshiro256Rng a(5), b(5);
  Bytes buf(16);
  a.Fill(buf);
  uint8_t expect[16];
  StoreLe64(expect, b.NextUint64());
  StoreLe64(expect + 8, b.NextUint64());
  EXPECT_EQ(0, memcmp(buf.data(), expect, 16));
}

TEST(Summary, BasicStats) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 5.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Summary, PercentileInterpolates) {
  Summary s;
  s.Add(0.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 2.5);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Percentile(50), 0.0);
}

TEST(Summary, PercentileRejectsOutOfRange) {
  Summary s;
  s.Add(1.0);
  EXPECT_THROW(s.Percentile(-1), std::invalid_argument);
  EXPECT_THROW(s.Percentile(101), std::invalid_argument);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ZeroIterations) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, SingleIterationRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(1, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](size_t i) {
                                  if (i == 37) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPool, ExceptionCancelsRemainingWork) {
  ThreadPool pool(4);
  constexpr size_t kN = 100000;
  std::atomic<size_t> executed{0};
  EXPECT_THROW(pool.ParallelFor(kN,
                                [&](size_t i) {
                                  if (i == 0) {
                                    throw std::runtime_error("boom");
                                  }
                                  executed.fetch_add(1, std::memory_order_relaxed);
                                }),
               std::runtime_error);
  // Without cancellation every non-throwing index runs (kN - 1); with it, the
  // shards still in flight when the exception landed stop early.
  EXPECT_LT(executed.load(), kN - 1);
}

TEST(ThreadPool, ExceptionFromLastShardStillPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(64,
                                [](size_t i) {
                                  if (i == 63) {
                                    throw std::logic_error("tail");
                                  }
                                }),
               std::logic_error);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(4,
                                [&](size_t) {
                                  pool.ParallelFor(16, [](size_t j) {
                                    if (j == 3) {
                                      throw std::logic_error("inner");
                                    }
                                  });
                                }),
               std::logic_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(8, [](size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.ParallelFor(100, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(4, [&](size_t) {
    GlobalPool().ParallelFor(8, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 32);
}

}  // namespace
}  // namespace vuvuzela::util
