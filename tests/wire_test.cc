// Wire format tests: fixed sizes, round trips, malformed-input rejection.

#include <gtest/gtest.h>

#include "src/util/random.h"
#include "src/wire/messages.h"
#include "src/wire/serde.h"

namespace vuvuzela::wire {
namespace {

TEST(Constants, MatchPaperSizes) {
  // §8.1: 256-byte conversation messages (16 bytes overhead), 80-byte
  // invitations (48 bytes overhead).
  EXPECT_EQ(kMessageSize, 240u);
  EXPECT_EQ(kEnvelopeSize, 256u);
  EXPECT_EQ(kInvitationSize, 80u);
  EXPECT_EQ(kInvitationPlaintextSize + 48, kInvitationSize);
  EXPECT_EQ(kDeadDropIdSize * 8, 128u);  // §3.1: 128-bit dead drop IDs
}

TEST(ExchangeRequest, RoundTrip) {
  util::Xoshiro256Rng rng(1);
  ExchangeRequest req;
  rng.Fill(req.dead_drop);
  rng.Fill(req.envelope);

  util::Bytes data = req.Serialize();
  EXPECT_EQ(data.size(), kExchangeRequestSize);
  auto parsed = ExchangeRequest::Parse(data);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dead_drop, req.dead_drop);
  EXPECT_EQ(parsed->envelope, req.envelope);
}

TEST(ExchangeRequest, RejectsWrongSize) {
  EXPECT_FALSE(ExchangeRequest::Parse(util::Bytes(kExchangeRequestSize - 1)).has_value());
  EXPECT_FALSE(ExchangeRequest::Parse(util::Bytes(kExchangeRequestSize + 1)).has_value());
  EXPECT_FALSE(ExchangeRequest::Parse({}).has_value());
}

TEST(DialRequest, RoundTrip) {
  util::Xoshiro256Rng rng(2);
  DialRequest req;
  req.dead_drop_index = 0xdeadbeef;
  rng.Fill(req.invitation);

  util::Bytes data = req.Serialize();
  EXPECT_EQ(data.size(), kDialRequestSize);
  auto parsed = DialRequest::Parse(data);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dead_drop_index, req.dead_drop_index);
  EXPECT_EQ(parsed->invitation, req.invitation);
}

TEST(DialRequest, RejectsWrongSize) {
  EXPECT_FALSE(DialRequest::Parse(util::Bytes(kDialRequestSize + 4)).has_value());
}

TEST(RoundAnnouncement, RoundTrip) {
  RoundAnnouncement ann{.round = 77, .type = RoundType::kDialing, .num_dial_dead_drops = 12};
  auto parsed = RoundAnnouncement::Parse(ann.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->round, 77u);
  EXPECT_EQ(parsed->type, RoundType::kDialing);
  EXPECT_EQ(parsed->num_dial_dead_drops, 12u);
}

TEST(RoundAnnouncement, RejectsBadType) {
  RoundAnnouncement ann{.round = 1, .type = RoundType::kConversation, .num_dial_dead_drops = 0};
  util::Bytes data = ann.Serialize();
  data[8] = 99;  // type byte
  EXPECT_FALSE(RoundAnnouncement::Parse(data).has_value());
}

TEST(RoundAnnouncement, RejectsTrailingBytes) {
  RoundAnnouncement ann{.round = 1, .type = RoundType::kConversation, .num_dial_dead_drops = 0};
  util::Bytes data = ann.Serialize();
  data.push_back(0);
  EXPECT_FALSE(RoundAnnouncement::Parse(data).has_value());
}

TEST(Serde, IntegersRoundTrip) {
  Writer w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  util::Bytes data = w.Take();
  EXPECT_EQ(data.size(), 1u + 2 + 4 + 8);

  Reader r(data);
  EXPECT_EQ(r.U8().value(), 0xab);
  EXPECT_EQ(r.U16().value(), 0x1234);
  EXPECT_EQ(r.U32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.U64().value(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ok());
}

TEST(Serde, VarBytesRoundTrip) {
  Writer w;
  util::Bytes payload = {1, 2, 3, 4, 5};
  w.Var(payload);
  util::Bytes data = w.Take();

  Reader r(data);
  auto out = r.Var();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(util::Bytes(out->begin(), out->end()), payload);
}

TEST(Serde, ReadPastEndFailsSoft) {
  util::Bytes data = {1, 2};
  Reader r(data);
  EXPECT_TRUE(r.U8().has_value());
  EXPECT_FALSE(r.U32().has_value());
  EXPECT_FALSE(r.ok());
  // Subsequent reads keep failing; no UB, no throw.
  EXPECT_FALSE(r.U64().has_value());
}

TEST(Serde, VarWithLyingLengthFails) {
  Writer w;
  w.U32(1000);  // claims 1000 bytes follow
  w.U8(1);
  util::Bytes data = w.Take();
  Reader r(data);
  EXPECT_FALSE(r.Var().has_value());
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace vuvuzela::wire
