// Wire format tests: fixed sizes, round trips, malformed-input rejection.

#include <gtest/gtest.h>

#include "src/transport/hop_wire.h"
#include "src/util/random.h"
#include "src/wire/messages.h"
#include "src/wire/serde.h"

namespace vuvuzela::wire {
namespace {

TEST(Constants, MatchPaperSizes) {
  // §8.1: 256-byte conversation messages (16 bytes overhead), 80-byte
  // invitations (48 bytes overhead).
  EXPECT_EQ(kMessageSize, 240u);
  EXPECT_EQ(kEnvelopeSize, 256u);
  EXPECT_EQ(kInvitationSize, 80u);
  EXPECT_EQ(kInvitationPlaintextSize + 48, kInvitationSize);
  EXPECT_EQ(kDeadDropIdSize * 8, 128u);  // §3.1: 128-bit dead drop IDs
}

TEST(ExchangeRequest, RoundTrip) {
  util::Xoshiro256Rng rng(1);
  ExchangeRequest req;
  rng.Fill(req.dead_drop);
  rng.Fill(req.envelope);

  util::Bytes data = req.Serialize();
  EXPECT_EQ(data.size(), kExchangeRequestSize);
  auto parsed = ExchangeRequest::Parse(data);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dead_drop, req.dead_drop);
  EXPECT_EQ(parsed->envelope, req.envelope);
}

TEST(ExchangeRequest, RejectsWrongSize) {
  EXPECT_FALSE(ExchangeRequest::Parse(util::Bytes(kExchangeRequestSize - 1)).has_value());
  EXPECT_FALSE(ExchangeRequest::Parse(util::Bytes(kExchangeRequestSize + 1)).has_value());
  EXPECT_FALSE(ExchangeRequest::Parse({}).has_value());
}

TEST(DialRequest, RoundTrip) {
  util::Xoshiro256Rng rng(2);
  DialRequest req;
  req.dead_drop_index = 0xdeadbeef;
  rng.Fill(req.invitation);

  util::Bytes data = req.Serialize();
  EXPECT_EQ(data.size(), kDialRequestSize);
  auto parsed = DialRequest::Parse(data);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dead_drop_index, req.dead_drop_index);
  EXPECT_EQ(parsed->invitation, req.invitation);
}

TEST(DialRequest, RejectsWrongSize) {
  EXPECT_FALSE(DialRequest::Parse(util::Bytes(kDialRequestSize + 4)).has_value());
}

TEST(RoundAnnouncement, RoundTrip) {
  RoundAnnouncement ann{.round = 77, .type = RoundType::kDialing, .num_dial_dead_drops = 12};
  auto parsed = RoundAnnouncement::Parse(ann.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->round, 77u);
  EXPECT_EQ(parsed->type, RoundType::kDialing);
  EXPECT_EQ(parsed->num_dial_dead_drops, 12u);
}

TEST(RoundAnnouncement, RejectsBadType) {
  RoundAnnouncement ann{.round = 1, .type = RoundType::kConversation, .num_dial_dead_drops = 0};
  util::Bytes data = ann.Serialize();
  data[8] = 99;  // type byte
  EXPECT_FALSE(RoundAnnouncement::Parse(data).has_value());
}

TEST(RoundAnnouncement, RejectsTrailingBytes) {
  RoundAnnouncement ann{.round = 1, .type = RoundType::kConversation, .num_dial_dead_drops = 0};
  util::Bytes data = ann.Serialize();
  data.push_back(0);
  EXPECT_FALSE(RoundAnnouncement::Parse(data).has_value());
}

TEST(Serde, IntegersRoundTrip) {
  Writer w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  util::Bytes data = w.Take();
  EXPECT_EQ(data.size(), 1u + 2 + 4 + 8);

  Reader r(data);
  EXPECT_EQ(r.U8().value(), 0xab);
  EXPECT_EQ(r.U16().value(), 0x1234);
  EXPECT_EQ(r.U32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.U64().value(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ok());
}

TEST(Serde, VarBytesRoundTrip) {
  Writer w;
  util::Bytes payload = {1, 2, 3, 4, 5};
  w.Var(payload);
  util::Bytes data = w.Take();

  Reader r(data);
  auto out = r.Var();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(util::Bytes(out->begin(), out->end()), payload);
}

TEST(Serde, ReadPastEndFailsSoft) {
  util::Bytes data = {1, 2};
  Reader r(data);
  EXPECT_TRUE(r.U8().has_value());
  EXPECT_FALSE(r.U32().has_value());
  EXPECT_FALSE(r.ok());
  // Subsequent reads keep failing; no UB, no throw.
  EXPECT_FALSE(r.U64().has_value());
}

TEST(Serde, VarWithLyingLengthFails) {
  Writer w;
  w.U32(1000);  // claims 1000 bytes follow
  w.U8(1);
  util::Bytes data = w.Take();
  Reader r(data);
  EXPECT_FALSE(r.Var().has_value());
  EXPECT_FALSE(r.ok());
}

// --- Chunked batch messages (transport/hop_wire.h) --------------------------
//
// The hop RPC protocol splits a batch across frames so one logical kBatch can
// exceed net::kMaxFramePayload while every frame — and the receiver's
// transient memory — stays bounded by the chunk budget.

using transport::BatchAssembler;
using transport::BatchMessage;
using transport::EncodeBatchChunks;

std::vector<util::Bytes> MakeItems(size_t count, size_t item_size, uint64_t seed) {
  util::Xoshiro256Rng rng(seed);
  std::vector<util::Bytes> items;
  items.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    items.push_back(rng.RandomBytes(item_size));
  }
  return items;
}

BatchMessage AssembleAll(const std::vector<net::Frame>& frames, BatchAssembler& assembler) {
  BatchAssembler::Status status = BatchAssembler::Status::kNeedMore;
  for (const auto& frame : frames) {
    status = assembler.Consume(frame);
    if (status != BatchAssembler::Status::kNeedMore) {
      break;
    }
  }
  EXPECT_EQ(status, BatchAssembler::Status::kDone) << assembler.error();
  return assembler.Take();
}

TEST(HopChunk, SingleFrameRoundTrip) {
  auto items = MakeItems(4, 64, 1);
  util::Bytes header = {9, 9};
  auto frames =
      EncodeBatchChunks(net::FrameType::kHopForwardConversation, 42, header, items, 1 << 20);
  ASSERT_TRUE(frames.has_value());
  ASSERT_EQ(frames->size(), 1u);

  BatchAssembler assembler;
  BatchMessage message = AssembleAll(*frames, assembler);
  EXPECT_EQ(message.op, net::FrameType::kHopForwardConversation);
  EXPECT_EQ(message.round, 42u);
  EXPECT_EQ(message.header, header);
  EXPECT_EQ(message.items, items);
}

TEST(HopChunk, EmptyBatchRoundTrip) {
  auto frames = EncodeBatchChunks(net::FrameType::kHopBackwardConversation, 7, {}, {}, 4096);
  ASSERT_TRUE(frames.has_value());
  ASSERT_EQ(frames->size(), 1u);
  BatchAssembler assembler;
  BatchMessage message = AssembleAll(*frames, assembler);
  EXPECT_TRUE(message.items.empty());
  EXPECT_TRUE(message.header.empty());
}

// A batch far larger than the frame budget streams through many chunks with
// bounded per-frame memory — the scaled-down version of a paper-scale 2.2M
// request kBatch exceeding net::kMaxFramePayload.
TEST(HopChunk, BatchLargerThanFrameBudgetStreamsBounded) {
  constexpr size_t kFrameBudget = 64 * 1024;  // stand-in for kMaxFramePayload
  auto items = MakeItems(5000, 416, 2);       // ~2 MB total, 32x the budget
  auto frames = EncodeBatchChunks(net::FrameType::kBatch, 9, {}, items, kFrameBudget);
  ASSERT_TRUE(frames.has_value());
  EXPECT_GT(frames->size(), 30u);
  for (const auto& frame : *frames) {
    EXPECT_LE(frame.payload.size(), kFrameBudget);
  }

  BatchAssembler assembler;
  BatchMessage message = AssembleAll(*frames, assembler);
  EXPECT_EQ(message.items, items);
  // The streaming decoder never held more than one chunk of wire buffer,
  // however large the logical batch.
  EXPECT_LE(assembler.peak_frame_bytes(), kFrameBudget);
}

TEST(HopChunk, ItemLargerThanBudgetFailsToEncode) {
  auto items = MakeItems(1, 8192, 3);
  EXPECT_FALSE(
      EncodeBatchChunks(net::FrameType::kBatch, 1, {}, items, 1024).has_value());
}

TEST(HopChunk, MissingFinalChunkIsIncomplete) {
  auto items = MakeItems(64, 400, 4);
  auto frames = EncodeBatchChunks(net::FrameType::kBatch, 5, {}, items, 2048);
  ASSERT_TRUE(frames.has_value());
  ASSERT_GT(frames->size(), 2u);
  BatchAssembler assembler;
  BatchAssembler::Status status = BatchAssembler::Status::kNeedMore;
  for (size_t i = 0; i + 1 < frames->size(); ++i) {  // drop the last chunk
    status = assembler.Consume((*frames)[i]);
  }
  EXPECT_EQ(status, BatchAssembler::Status::kNeedMore);
}

TEST(HopChunk, RejectsContinuationBeforeFirstFrame) {
  BatchAssembler assembler;
  net::Frame stray{net::FrameType::kBatchChunk, 1, {0, 0, 0, 0, 0}};
  EXPECT_EQ(assembler.Consume(stray), BatchAssembler::Status::kError);
}

TEST(HopChunk, RejectsRoundMismatchAcrossChunks) {
  auto items = MakeItems(64, 400, 5);
  auto frames = EncodeBatchChunks(net::FrameType::kBatch, 5, {}, items, 2048);
  ASSERT_TRUE(frames.has_value());
  ASSERT_GT(frames->size(), 1u);
  (*frames)[1].round = 6;
  BatchAssembler assembler;
  EXPECT_EQ(assembler.Consume((*frames)[0]), BatchAssembler::Status::kNeedMore);
  EXPECT_EQ(assembler.Consume((*frames)[1]), BatchAssembler::Status::kError);
}

TEST(HopChunk, RejectsTruncatedItem) {
  auto items = MakeItems(2, 100, 6);
  auto frames = EncodeBatchChunks(net::FrameType::kBatch, 1, {}, items, 1 << 20);
  ASSERT_TRUE(frames.has_value());
  ASSERT_EQ(frames->size(), 1u);
  net::Frame frame = (*frames)[0];
  frame.payload.resize(frame.payload.size() - 17);
  BatchAssembler assembler;
  EXPECT_EQ(assembler.Consume(frame), BatchAssembler::Status::kError);
}

// Chunking removes the per-frame size cap, so the assembler enforces a total
// ceiling: an endless stream of final-flag-less continuations cannot grow one
// message without bound.
TEST(HopChunk, RejectsMessageExceedingSizeCeiling) {
  auto items = MakeItems(64, 400, 8);  // ~25 KB total
  auto frames = EncodeBatchChunks(net::FrameType::kBatch, 1, {}, items, 2048);
  ASSERT_TRUE(frames.has_value());
  BatchAssembler assembler(/*max_message_bytes=*/4096);
  BatchAssembler::Status status = BatchAssembler::Status::kNeedMore;
  for (const auto& frame : *frames) {
    status = assembler.Consume(frame);
    if (status != BatchAssembler::Status::kNeedMore) {
      break;
    }
  }
  EXPECT_EQ(status, BatchAssembler::Status::kError);
}

// Random garbage through the assembler: must never crash or accept, only
// kError (or starve with kNeedMore).
TEST(HopChunk, FuzzedChunksNeverCrash) {
  util::Xoshiro256Rng rng(77);
  for (int iteration = 0; iteration < 500; ++iteration) {
    BatchAssembler assembler;
    BatchAssembler::Status status = BatchAssembler::Status::kNeedMore;
    for (int frame_index = 0; frame_index < 4; ++frame_index) {
      net::Frame frame;
      frame.type = (frame_index == 0 || rng.UniformUint64(2) == 0)
                       ? net::FrameType::kBatch
                       : net::FrameType::kBatchChunk;
      frame.round = rng.UniformUint64(3);
      frame.payload = rng.RandomBytes(rng.UniformUint64(64));
      status = assembler.Consume(frame);
      if (status != BatchAssembler::Status::kNeedMore) {
        break;
      }
    }
    // Reaching here without UB/asan findings is the property; any terminal
    // status is acceptable.
    (void)status;
  }
}

}  // namespace
}  // namespace vuvuzela::wire
