// Adversarial privacy suite, part 2: wire-tap correlation attacks on a real
// multi-process deployment.
//
// The adversary of §3 watches every link. This test builds that adversary for
// real: two deployments — three vuvuzela-hopd-equivalent processes plus a
// vuvuzela-exchanged-equivalent process each — with a WireTap relay inserted
// on every edge (coordd→hop0/1/2, last-hop→exchanged), and a per-round user
// load that varies round to round (the signal a traffic-analysis adversary
// wants to trace). Deployment A runs sampled paper-style noise; deployment B
// runs the same schedule with noise disabled.
//
// The Bahramali-style segment-matching attack cross-correlates the per-round
// byte series from a sender-side link (coordd→hop0 forward-conversation
// frames: exactly the user onions, before any server adds cover traffic)
// with a receiver-side link (last-hop→exchanged: users plus every server's
// noise). With noise on, accuracy must sit at chance; with noise off it must
// be (near) perfect — the converse direction that proves the harness and the
// attack actually work, so the at-chance result cannot be vacuous.
//
// FORK DISCIPLINE: every child process is forked before any thread exists in
// the parent (bench/forked_fleet.h requirement), which is why both
// deployments are spawned up front and the taps are Create()d (bind only)
// before the forks that need their ports, then Activate()d afterwards.
//
// Everything is seeded: chain keys, noise RNGs (sampled noise draws from the
// key-ceremony-derived per-server RNG), and the user schedule, so the byte
// series — and therefore the attack's accuracy — are reproducible.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/forked_fleet.h"
#include "src/mixnet/chain.h"
#include "src/net/frame.h"
#include "src/sim/correlation.h"
#include "src/sim/wiretap.h"
#include "src/transport/coord_daemon.h"
#include "src/transport/exchange_daemon.h"
#include "src/transport/hop_chain.h"

namespace vuvuzela {
namespace {

constexpr size_t kHops = 3;
constexpr uint64_t kRounds = 36;
constexpr size_t kSegments = 6;
constexpr uint64_t kSeedA = 0x7ab5;
constexpr uint64_t kSeedB = 0x7ab6;

// Per-round synthetic user counts: the varying load the attack traces. A
// fixed LCG keeps it reproducible and segment-distinct.
std::vector<uint64_t> UserSchedule() {
  std::vector<uint64_t> schedule;
  uint64_t state = 0x5eed;
  for (uint64_t i = 0; i < kRounds; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    schedule.push_back(6 + (state >> 33) % 18);  // 6..23 users
  }
  return schedule;
}

struct TappedDeployment {
  std::vector<bench::ForkedServer> exchanged;
  std::vector<bench::ForkedServer> hops;
  std::unique_ptr<sim::WireTap> exchange_tap;
  std::vector<std::unique_ptr<sim::WireTap>> hop_taps;  // coordd→hop i
};

// Forks the processes and binds (but does not activate) the taps. Must run
// before any parent thread exists.
TappedDeployment SpawnTapped(const mixnet::ChainConfig& chain_config, uint64_t seed,
                             const std::string& tag) {
  TappedDeployment d;
  d.exchanged = bench::SpawnForkedFleet(1, [](uint32_t shard, uint32_t num_shards) {
    transport::ExchangedConfig config;
    config.shard_index = shard;
    config.num_shards = num_shards;
    return transport::ExchangedDaemon::Create(config);
  });
  if (d.exchanged.empty()) {
    return d;
  }
  sim::WireTapConfig ex_tap;
  ex_tap.label = tag + ":hop2-exchanged";
  ex_tap.upstream_port = d.exchanged[0].port;
  d.exchange_tap = sim::WireTap::Create(ex_tap);
  if (d.exchange_tap == nullptr) {
    return d;
  }
  // The last hop's exchange endpoint is the tap — its listener is already
  // bound, so the child's router connect lands in the backlog and is picked
  // up when the tap activates.
  uint16_t exchange_port = d.exchange_tap->port();
  d.hops = bench::SpawnForkedFleet(
      static_cast<uint32_t>(kHops), [&](uint32_t shard, uint32_t num_shards) {
        auto keys = transport::DeriveChainKeys(seed, num_shards);
        auto server = transport::BuildMixServer(chain_config, keys, shard);
        transport::HopDaemonConfig config;
        if (shard == num_shards - 1) {
          config.exchange.partitions.push_back({"127.0.0.1", exchange_port});
        }
        return transport::HopDaemon::Create(config, std::move(server));
      });
  for (const auto& hop : d.hops) {
    sim::WireTapConfig tap;
    tap.label = tag + ":coordd-hop" + std::to_string(d.hop_taps.size());
    tap.upstream_port = hop.port;
    d.hop_taps.push_back(sim::WireTap::Create(tap));
  }
  return d;
}

bool Activate(TappedDeployment& d) {
  if (d.exchange_tap == nullptr || d.hop_taps.size() != kHops) {
    return false;
  }
  for (const auto& tap : d.hop_taps) {
    if (tap == nullptr) {
      return false;
    }
  }
  d.exchange_tap->Activate();
  for (auto& tap : d.hop_taps) {
    tap->Activate();
  }
  return true;
}

void Reap(TappedDeployment& d) {
  bench::KillForkedFleet(d.hops);
  bench::KillForkedFleet(d.exchanged);
}

// Drives the full schedule through the tapped deployment from an in-process
// coordinator (the same CoordinatorDaemon class vuvuzela-coordd runs).
transport::CoordDaemonResult RunCoordinator(const TappedDeployment& d, uint64_t seed) {
  transport::CoordDaemonConfig config;
  for (const auto& tap : d.hop_taps) {
    config.hops.push_back({"127.0.0.1", tap->port()});
  }
  config.scheduler.max_in_flight = 2;
  config.schedule.conversation_rounds_per_dialing_round = 1000;  // conversation only
  config.total_rounds = kRounds;
  config.admission_window_seconds = 0.005;
  config.hop_timeout_ms = 10000;
  config.synthetic_users = 8;
  config.synthetic_user_schedule = UserSchedule();
  config.key_seed = seed;
  config.workload_seed = seed;
  config.shutdown_hops_on_exit = true;  // cascades to the exchanged process
  transport::CoordinatorDaemon coordinator(std::move(config));
  if (!coordinator.Start()) {
    return {};
  }
  return coordinator.Run();
}

// Sender-side observable: per-round bytes of forward-conversation frames on
// the coordd→hop0 link — the user batch before any server added noise.
// (Unfiltered forward bytes would also count the backward pass's request,
// whose size includes hop0's own noise responses.)
std::map<uint64_t, uint64_t> SenderSeries(const sim::WireTap& tap) {
  std::map<uint64_t, uint64_t> series;
  for (const auto& record : tap.Records()) {
    if (record.direction == sim::TapDirection::kForward &&
        record.frame_type == static_cast<uint8_t>(net::FrameType::kHopForwardConversation) &&
        record.round != 0) {
      series[record.round] += record.bytes;
    }
  }
  return series;
}

sim::AttackResult Attack(const TappedDeployment& d) {
  std::map<uint64_t, uint64_t> sender = SenderSeries(*d.hop_taps[0]);
  std::map<uint64_t, uint64_t> receiver =
      d.exchange_tap->PerRoundBytes(sim::TapDirection::kForward);
  sim::AlignedSeries aligned = sim::AlignRoundSeries(sender, receiver);
  EXPECT_EQ(aligned.rounds.size(), kRounds);
  return sim::SegmentMatchingAttack(aligned.a, aligned.b, kSegments);
}

TEST(WiretapAttack, CorrelationAttackOnRealDeployment) {
  // Deployment A: sampled cover traffic, scale chosen so the per-round noise
  // swamps the user-count signal (std ≈ 100+ requests vs ≈ 5 users).
  mixnet::ChainConfig noisy;
  noisy.num_servers = kHops;
  noisy.conversation_noise = {.params = {40.0, 20.0}, .deterministic = false};
  noisy.dialing_noise = {.params = {40.0, 20.0}, .deterministic = false};
  noisy.parallel = false;

  // Deployment B: same schedule, cover traffic off — ⌈max(0, L(0, 1))⌉ with
  // a deterministic plan adds exactly zero requests at every server.
  mixnet::ChainConfig silent = noisy;
  silent.conversation_noise = {.params = {0.0, 1.0}, .deterministic = true};
  silent.dialing_noise = {.params = {0.0, 1.0}, .deterministic = true};

  // All fork()s happen here, before any parent thread.
  TappedDeployment a = SpawnTapped(noisy, kSeedA, "noisy");
  TappedDeployment b = SpawnTapped(silent, kSeedB, "silent");
  ASSERT_TRUE(Activate(a));
  ASSERT_TRUE(Activate(b));

  // --- Deployment A: with the paper's defense up, the attack is blind. ---
  transport::CoordDaemonResult result_a = RunCoordinator(a, kSeedA);
  EXPECT_EQ(result_a.conversation_rounds_completed, kRounds);
  EXPECT_EQ(result_a.rounds_abandoned, 0u);

  // Every tapped edge saw traffic in both directions, attributed to rounds.
  for (const auto& tap : a.hop_taps) {
    EXPECT_GT(tap->bytes_forward(), 0u) << tap->label();
    EXPECT_GT(tap->bytes_backward(), 0u) << tap->label();
    EXPECT_FALSE(tap->PerRoundBytes(sim::TapDirection::kForward).empty()) << tap->label();
    EXPECT_FALSE(tap->PerRoundBytes(sim::TapDirection::kBackward).empty()) << tap->label();
  }
  EXPECT_GT(a.exchange_tap->bytes_forward(), 0u);
  EXPECT_GT(a.exchange_tap->bytes_backward(), 0u);

  // The adversary's offline artifact: JSONL with both directions on record.
  std::string dump = a.hop_taps[0]->DumpJsonl();
  EXPECT_NE(dump.find("\"dir\":\"fwd\""), std::string::npos);
  EXPECT_NE(dump.find("\"dir\":\"rev\""), std::string::npos);
  EXPECT_NE(dump.find("noisy:coordd-hop0"), std::string::npos);

  sim::AttackResult noisy_attack = Attack(a);
  Reap(a);
  EXPECT_EQ(noisy_attack.segments, kSegments);
  EXPECT_DOUBLE_EQ(noisy_attack.chance, 1.0 / kSegments);
  // At chance: with 6 segments an oblivious adversary expects 1 hit; the
  // defense holds as long as the attack cannot beat that by more than one
  // lucky segment. (Deterministic for the fixed seeds above.)
  EXPECT_LE(noisy_attack.accuracy, noisy_attack.chance + 1.0 / kSegments)
      << "correlation attack beat chance despite cover traffic";

  // --- Deployment B: defense off, the same attack must win — proving the
  // harness, the taps, and the estimator actually carry the signal. ---
  transport::CoordDaemonResult result_b = RunCoordinator(b, kSeedB);
  EXPECT_EQ(result_b.conversation_rounds_completed, kRounds);

  sim::AttackResult silent_attack = Attack(b);
  Reap(b);
  EXPECT_GE(silent_attack.accuracy, 0.99)
      << "attack failed to trace traffic even with noise disabled — "
         "the at-chance result above would be vacuous";
}

}  // namespace
}  // namespace vuvuzela
