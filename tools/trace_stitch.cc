// trace_stitch — stitch per-daemon /trace JSONL dumps into per-round
// cross-process timelines.
//
//   $ curl -s http://127.0.0.1:9101/trace > coordd.jsonl
//   $ curl -s http://127.0.0.1:9102/trace > hopd0.jsonl
//   $ trace_stitch coordd.jsonl hopd0.jsonl
//   round 7
//     +0us      coordd    lifecycle/announced  type=conv
//     +1833us   hopd-0    hop/pass             op=forward_conversation ...
//
// The stitching itself (JSONL parse, per-round grouping, wall-clock sort)
// lives in src/obs/trace.h so tests cover it; this binary only reads files
// and applies CI assertions:
//
//   --require SPAN   every stitched round must contain SPAN (repeatable);
//                    a miss lists the offending rounds and exits 1
//   --min-rounds N   at least N rounds must appear in the stitch
//   --quiet          suppress the timeline, run the assertions only
//
// A file named "-" reads stdin, so `curl .../trace | trace_stitch -` works.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/trace.h"

using namespace vuvuzela;

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--require SPAN]... [--min-rounds N] [--quiet] FILE...\n"
               "Stitches /trace JSONL dumps from several daemons into per-round\n"
               "timelines (FILE of '-' reads stdin). --require asserts every round\n"
               "contains the span; --min-rounds asserts the stitch covers at least\n"
               "N rounds. Any failed assertion exits 1.\n",
               argv0);
}

bool ReadAll(const std::string& path, std::string* out) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    *out = buffer.str();
    return true;
  }
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return false;
  }
  out->assign(std::istreambuf_iterator<char>(file), std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> required;
  std::vector<std::string> files;
  size_t min_rounds = 0;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--require" && i + 1 < argc) {
      required.emplace_back(argv[++i]);
    } else if (arg == "--min-rounds" && i + 1 < argc) {
      min_rounds = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-' && arg != "-") {
      Usage(argv[0]);
      return 2;
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (files.empty()) {
    Usage(argv[0]);
    return 2;
  }

  std::vector<std::vector<obs::TraceRecord>> dumps;
  for (const std::string& path : files) {
    std::string jsonl;
    if (!ReadAll(path, &jsonl)) {
      std::fprintf(stderr, "trace_stitch: cannot read %s\n", path.c_str());
      return 1;
    }
    dumps.push_back(obs::ParseTraceJsonl(jsonl));
  }

  std::vector<obs::StitchedRound> rounds = obs::StitchRounds(dumps);
  if (!quiet) {
    std::fputs(obs::RenderTimeline(rounds).c_str(), stdout);
  }

  bool ok = true;
  if (rounds.size() < min_rounds) {
    std::fprintf(stderr, "trace_stitch: FAIL stitched %zu rounds, need at least %zu\n",
                 rounds.size(), min_rounds);
    ok = false;
  }
  for (const std::string& span : required) {
    std::string missing;
    for (const obs::StitchedRound& round : rounds) {
      if (std::find(round.spans.begin(), round.spans.end(), span) == round.spans.end()) {
        missing += (missing.empty() ? "" : ",") + std::to_string(round.round);
      }
    }
    if (!missing.empty()) {
      std::fprintf(stderr, "trace_stitch: FAIL span %s missing from rounds %s\n", span.c_str(),
                   missing.c_str());
      ok = false;
    }
  }
  if (ok && (min_rounds > 0 || !required.empty())) {
    std::fprintf(stderr, "trace_stitch: OK %zu rounds, %zu required spans present\n",
                 rounds.size(), required.size());
  }
  return ok ? 0 : 1;
}
